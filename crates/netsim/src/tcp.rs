//! A TCP-Reno-style reliable transport, used for task data transfers.
//!
//! The paper moves task payloads (0.5–5.5 MB, Table I) between edge devices
//! and edge servers over TCP on a congested network; transfer times emerge
//! from congestion control sharing bottleneck queues with background
//! traffic. This module implements the canonical Reno behaviours that
//! produce those dynamics:
//!
//! * three-way handshake, FIN close, cumulative ACKs,
//! * slow start / congestion avoidance (AIMD),
//! * fast retransmit + fast recovery on three duplicate ACKs,
//! * retransmission timeout with exponential backoff and go-back-N,
//! * RFC 6298 RTT estimation (Karn's rule: only un-retransmitted samples).
//!
//! The implementation is a pure state machine: it never touches the event
//! queue or the network directly. Callers invoke the `on_*`/verb methods
//! and then drain three outboxes — [`TcpHost::take_segments`] (segments to
//! put on the wire), [`TcpHost::take_timer_requests`] (RTO timers to arm),
//! and [`TcpHost::take_events`] (events to deliver to applications). This
//! makes the whole transport unit-testable with a two-line fake network.
//!
//! Stream offsets are tracked as `u64` byte offsets and mapped to 32-bit
//! wire sequence numbers at the edge; transfers in this system are far
//! below 4 GiB so no wrap handling is required (asserted).

use crate::event::ConnId;
use crate::time::{SimDuration, SimTime};
use int_packet::{TcpFlags, TcpHeader};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Transport tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment payload, bytes. 1400 keeps full segments near the
    /// paper's 1.5 KB packets once Ethernet/IP/TCP headers are added.
    pub mss: usize,
    /// Initial congestion window, in MSS (RFC 6928 IW10).
    pub initial_cwnd_mss: u64,
    /// Initial slow-start threshold, bytes.
    pub initial_ssthresh: u64,
    /// Fixed advertised receive window, bytes (apps consume immediately).
    pub recv_window: u32,
    /// Lower bound for the retransmission timeout.
    pub min_rto: SimDuration,
    /// Initial RTO before any RTT sample (RFC 6298: 1 s).
    pub initial_rto: SimDuration,
    /// Upper bound for backed-off RTOs.
    pub max_rto: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1400,
            initial_cwnd_mss: 10,
            initial_ssthresh: 256 * 1024,
            recv_window: 1024 * 1024,
            min_rto: SimDuration::from_millis(200),
            initial_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(60),
        }
    }
}

/// Events surfaced to the owning application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// Active open completed (SYN-ACK received).
    Connected {
        /// The connection.
        conn: ConnId,
    },
    /// Passive open completed (handshake ACK received on a listener).
    Accepted {
        /// The new connection.
        conn: ConnId,
        /// Local port it was accepted on.
        local_port: u16,
        /// Remote address.
        peer: (Ipv4Addr, u16),
    },
    /// In-order payload bytes arrived.
    Data {
        /// The connection.
        conn: ConnId,
        /// The bytes, in stream order.
        data: Vec<u8>,
    },
    /// End of stream: for a receiver, the peer's FIN arrived after all data
    /// was delivered; for a sender, our FIN (and hence every byte we ever
    /// queued) has been acknowledged. Emitted exactly once per connection.
    Closed {
        /// The connection.
        conn: ConnId,
    },
}

/// A segment handed to the network layer for transmission.
#[derive(Debug, Clone)]
pub struct SegmentOut {
    /// Destination host.
    pub dst_ip: Ipv4Addr,
    /// Fully formed TCP header.
    pub header: TcpHeader,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A request to (re)arm a connection's retransmission timer.
#[derive(Debug, Clone, Copy)]
pub struct TimerRequest {
    /// Connection the timer belongs to.
    pub conn: ConnId,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Generation; fire only if still current.
    pub generation: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    SynSent,
    SynReceived,
    Established,
    /// Our FIN is in flight or queued; may still be retransmitting data.
    Closing,
    /// Everything done; kept briefly for bookkeeping then dropped.
    Done,
}

const CONNECT_MAX_RETRIES: u32 = 8;

/// Implicit window scale (RFC 7323 with a fixed shift both ends agree on):
/// the 16-bit wire window field is in units of 64 bytes, allowing windows
/// up to 4 MiB without carrying the option in our fixed 20-byte header.
const WINDOW_SHIFT: u32 = 6;

/// Encode a byte window into the scaled 16-bit wire field (rounds up so a
/// non-zero window never encodes to zero).
fn wire_window(bytes: u32) -> u16 {
    ((bytes + (1 << WINDOW_SHIFT) - 1) >> WINDOW_SHIFT).min(u16::MAX as u32) as u16
}

/// Decode the scaled wire field back to bytes.
fn unscale_window(wire: u16) -> u32 {
    (wire as u32) << WINDOW_SHIFT
}

struct Conn {
    id: ConnId,
    state: State,
    peer_ip: Ipv4Addr,
    peer_port: u16,
    local_port: u16,

    // ---- send side ----
    /// Initial send sequence number (wire); SYN consumes `iss`.
    iss: u32,
    /// All bytes ever queued for sending.
    snd_buf: Vec<u8>,
    /// First unacknowledged stream offset.
    snd_una: u64,
    /// Next stream offset to send.
    snd_nxt: u64,
    /// Peer's advertised receive window.
    snd_wnd: u32,
    /// Congestion window, bytes.
    cwnd: u64,
    /// Slow-start threshold, bytes.
    ssthresh: u64,
    /// Duplicate-ACK counter.
    dup_acks: u32,
    /// In fast recovery until `snd_una` reaches this offset.
    recover: Option<u64>,
    /// Application called close: FIN follows the last data byte.
    fin_queued: bool,
    /// FIN has been transmitted at least once.
    fin_sent: bool,
    /// Our FIN was acknowledged.
    fin_acked: bool,
    /// SYN retransmission counter (connect gives up after too many).
    syn_retries: u32,

    // ---- receive side ----
    /// Peer's initial sequence number (wire).
    irs: u32,
    /// Next expected stream offset from the peer.
    rcv_nxt: u64,
    /// Out-of-order segments keyed by stream offset.
    ooo: BTreeMap<u64, Vec<u8>>,
    /// Peer FIN's stream offset, once seen.
    peer_fin: Option<u64>,
    /// We already told the app the stream ended.
    eof_delivered: bool,
    /// Peer's FIN has been fully processed (it consumed one sequence slot).
    peer_fin_processed: bool,

    // ---- RTT / RTO ----
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    /// Outstanding RTT sample: (stream offset that must be acked, send time).
    rtt_sample: Option<(u64, SimTime)>,
    /// Current timer generation.
    timer_gen: u64,
    /// True if a timer is conceptually armed.
    timer_armed: bool,
}

impl Conn {
    fn flight_size(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn send_window(&self) -> u64 {
        self.cwnd.min(self.snd_wnd as u64)
    }

    /// Wire sequence for a stream offset (SYN consumes `iss`).
    fn wire_seq(&self, offset: u64) -> u32 {
        debug_assert!(offset < u32::MAX as u64, "stream too long for no-wrap mapping");
        self.iss.wrapping_add(1).wrapping_add(offset as u32)
    }

    /// Stream offset for a peer wire sequence.
    fn peer_offset(&self, seq: u32) -> i64 {
        // (seq - irs - 1) interpreted in a window around rcv_nxt.
        seq.wrapping_sub(self.irs).wrapping_sub(1) as i32 as i64
    }
}

/// Per-host TCP endpoint: all connections plus the three outboxes.
pub struct TcpHost {
    cfg: TcpConfig,
    local_ip: Ipv4Addr,
    conns: HashMap<ConnId, Conn>,
    by_tuple: HashMap<(Ipv4Addr, u16, u16), ConnId>,
    listeners: Vec<u16>,
    next_ephemeral: u16,
    /// Next connection id; also advanced synchronously by `AppCtx` so apps
    /// get their `ConnId` before the engine processes the connect op.
    pub(crate) next_conn: ConnId,
    /// Deterministic ISS counter (no randomness needed inside a simulation).
    next_iss: u32,

    segments: Vec<SegmentOut>,
    timers: Vec<TimerRequest>,
    events: Vec<TcpEvent>,
}

impl TcpHost {
    /// New endpoint for a host with address `local_ip`.
    pub fn new(local_ip: Ipv4Addr, cfg: TcpConfig) -> Self {
        TcpHost {
            cfg,
            local_ip,
            conns: HashMap::new(),
            by_tuple: HashMap::new(),
            listeners: Vec::new(),
            next_ephemeral: 40_000,
            next_conn: 1,
            next_iss: 1_000,
            segments: Vec::new(),
            timers: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Drain segments to transmit.
    pub fn take_segments(&mut self) -> Vec<SegmentOut> {
        std::mem::take(&mut self.segments)
    }

    /// Drain timer (re)arm requests.
    pub fn take_timer_requests(&mut self) -> Vec<TimerRequest> {
        std::mem::take(&mut self.timers)
    }

    /// Drain application events.
    pub fn take_events(&mut self) -> Vec<TcpEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of live connections (diagnostics).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Address this endpoint sends from.
    pub fn local_ip(&self) -> Ipv4Addr {
        self.local_ip
    }

    /// Allocate a fresh connection id (to pass to [`TcpHost::connect`]).
    pub fn alloc_conn_id(&mut self) -> ConnId {
        let c = self.next_conn;
        self.next_conn += 1;
        c
    }

    /// Start listening for connections on `port`.
    pub fn listen(&mut self, port: u16) {
        if !self.listeners.contains(&port) {
            self.listeners.push(port);
        }
    }

    /// Begin an active open. `conn` must be a fresh id (allocated via
    /// `next_conn` by the caller).
    pub fn connect(&mut self, conn: ConnId, dst_ip: Ipv4Addr, dst_port: u16, now: SimTime) {
        let local_port = self.alloc_ephemeral();
        let iss = self.alloc_iss();
        let mut c = self.new_conn(conn, dst_ip, dst_port, local_port, iss);
        c.state = State::SynSent;
        self.by_tuple.insert((dst_ip, dst_port, local_port), conn);

        let hdr = TcpHeader {
            src_port: local_port,
            dst_port,
            seq: iss,
            ack: 0,
            flags: TcpFlags::SYN,
            window: wire_window(self.cfg.recv_window),
        };
        self.segments.push(SegmentOut { dst_ip, header: hdr, payload: Vec::new() });
        self.conns.insert(conn, c);
        self.arm_timer(conn, now);
    }

    /// Queue bytes for sending on an established (or connecting) connection.
    pub fn send(&mut self, conn: ConnId, data: &[u8], now: SimTime) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        debug_assert!(!c.fin_queued, "send after close");
        c.snd_buf.extend_from_slice(data);
        self.pump(conn, now);
    }

    /// Half-close: no more data will be queued; FIN follows the last byte.
    pub fn close(&mut self, conn: ConnId, now: SimTime) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        if c.fin_queued {
            return;
        }
        c.fin_queued = true;
        if c.state == State::Established {
            c.state = State::Closing;
        }
        self.pump(conn, now);
    }

    /// A TCP segment addressed to this host arrived.
    pub fn on_segment(
        &mut self,
        now: SimTime,
        src_ip: Ipv4Addr,
        hdr: &TcpHeader,
        payload: &[u8],
    ) {
        let tuple = (src_ip, hdr.src_port, hdr.dst_port);
        if let Some(&conn) = self.by_tuple.get(&tuple) {
            self.on_conn_segment(conn, now, hdr, payload);
            return;
        }
        // New connection? Only SYNs to listening ports are honoured.
        if hdr.flags.syn && !hdr.flags.ack && self.listeners.contains(&hdr.dst_port) {
            self.accept_syn(now, src_ip, hdr);
        }
        // Anything else to an unknown tuple is silently dropped (no RST in
        // this simulation; nothing generates half-open traffic).
    }

    /// A retransmission timer fired.
    pub fn on_timer(&mut self, conn: ConnId, generation: u64, now: SimTime) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        if !c.timer_armed || c.timer_gen != generation {
            return; // stale timer
        }
        c.timer_armed = false;

        match c.state {
            State::SynSent | State::SynReceived => {
                c.syn_retries += 1;
                if c.syn_retries > CONNECT_MAX_RETRIES {
                    self.drop_conn(conn);
                    return;
                }
                c.rto = (c.rto * 2).min(self.cfg.max_rto);
                let flags =
                    if c.state == State::SynSent { TcpFlags::SYN } else { TcpFlags::SYN_ACK };
                let ack = if c.state == State::SynSent { 0 } else { c.wire_ack() };
                let hdr = TcpHeader {
                    src_port: c.local_port,
                    dst_port: c.peer_port,
                    seq: c.iss,
                    ack,
                    flags,
                    window: wire_window(self.cfg.recv_window),
                };
                let dst_ip = c.peer_ip;
                self.segments.push(SegmentOut { dst_ip, header: hdr, payload: Vec::new() });
                self.arm_timer(conn, now);
            }
            State::Established | State::Closing => {
                // RTO: multiplicative decrease, go-back-N, backoff.
                let flight = c.flight_size().max(1);
                c.ssthresh = (flight / 2).max(2 * self.cfg.mss as u64);
                c.cwnd = self.cfg.mss as u64;
                c.snd_nxt = c.snd_una;
                c.dup_acks = 0;
                c.recover = None;
                if c.fin_sent && !c.fin_acked {
                    c.fin_sent = false; // pump() will retransmit the FIN
                }
                c.rto = (c.rto * 2).min(self.cfg.max_rto);
                c.rtt_sample = None; // Karn: no sampling across retransmits
                self.pump(conn, now);
            }
            State::Done => {}
        }
    }

    // ---------------------------------------------------------------- internals

    fn alloc_ephemeral(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(40_000);
        p
    }

    fn alloc_iss(&mut self) -> u32 {
        let iss = self.next_iss;
        self.next_iss = self.next_iss.wrapping_add(64_000);
        iss
    }

    fn new_conn(
        &self,
        id: ConnId,
        peer_ip: Ipv4Addr,
        peer_port: u16,
        local_port: u16,
        iss: u32,
    ) -> Conn {
        Conn {
            id,
            state: State::SynSent,
            peer_ip,
            peer_port,
            local_port,
            iss,
            snd_buf: Vec::new(),
            snd_una: 0,
            snd_nxt: 0,
            snd_wnd: self.cfg.recv_window,
            cwnd: self.cfg.initial_cwnd_mss * self.cfg.mss as u64,
            ssthresh: self.cfg.initial_ssthresh,
            dup_acks: 0,
            recover: None,
            fin_queued: false,
            fin_sent: false,
            fin_acked: false,
            syn_retries: 0,
            irs: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            peer_fin: None,
            eof_delivered: false,
            peer_fin_processed: false,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: self.cfg.initial_rto,
            rtt_sample: None,
            timer_gen: 0,
            timer_armed: false,
        }
    }

    fn accept_syn(&mut self, now: SimTime, src_ip: Ipv4Addr, hdr: &TcpHeader) {
        let conn = self.next_conn;
        self.next_conn += 1;
        let iss = self.alloc_iss();
        let mut c = self.new_conn(conn, src_ip, hdr.src_port, hdr.dst_port, iss);
        c.state = State::SynReceived;
        c.irs = hdr.seq;
        c.snd_wnd = unscale_window(hdr.window);
        let synack = TcpHeader {
            src_port: c.local_port,
            dst_port: c.peer_port,
            seq: iss,
            ack: hdr.seq.wrapping_add(1),
            flags: TcpFlags::SYN_ACK,
            window: wire_window(self.cfg.recv_window),
        };
        self.by_tuple.insert((src_ip, hdr.src_port, hdr.dst_port), conn);
        self.segments.push(SegmentOut { dst_ip: src_ip, header: synack, payload: Vec::new() });
        self.conns.insert(conn, c);
        self.arm_timer(conn, now);
    }

    fn on_conn_segment(&mut self, conn: ConnId, now: SimTime, hdr: &TcpHeader, payload: &[u8]) {
        let Some(c) = self.conns.get_mut(&conn) else { return };

        match c.state {
            State::SynSent => {
                if hdr.flags.syn && hdr.flags.ack && hdr.ack == c.iss.wrapping_add(1) {
                    c.irs = hdr.seq;
                    c.snd_wnd = unscale_window(hdr.window);
                    c.state = State::Established;
                    c.timer_armed = false;
                    c.timer_gen += 1;
                    let id = c.id;
                    self.events.push(TcpEvent::Connected { conn: id });
                    self.send_ack(conn);
                    self.pump(conn, now);
                }
                return;
            }
            State::SynReceived => {
                if hdr.flags.ack && hdr.ack == c.iss.wrapping_add(1) && !hdr.flags.syn {
                    c.state = State::Established;
                    c.timer_armed = false;
                    c.timer_gen += 1;
                    let (id, lp, peer) = (c.id, c.local_port, (c.peer_ip, c.peer_port));
                    self.events.push(TcpEvent::Accepted { conn: id, local_port: lp, peer });
                    // The handshake ACK may carry data; fall through.
                } else if hdr.flags.syn && !hdr.flags.ack {
                    // Duplicate SYN: re-send SYN-ACK.
                    let synack = TcpHeader {
                        src_port: c.local_port,
                        dst_port: c.peer_port,
                        seq: c.iss,
                        ack: c.irs.wrapping_add(1),
                        flags: TcpFlags::SYN_ACK,
                        window: wire_window(self.cfg.recv_window),
                    };
                    let dst = c.peer_ip;
                    self.segments.push(SegmentOut { dst_ip: dst, header: synack, payload: Vec::new() });
                    return;
                } else {
                    return;
                }
            }
            _ => {}
        }

        if hdr.flags.ack {
            self.process_ack(conn, hdr, payload.len(), now);
        }
        if !payload.is_empty() || hdr.flags.fin {
            self.process_data(conn, hdr, payload, now);
        }
        self.maybe_finish(conn);
    }

    fn process_ack(&mut self, conn: ConnId, hdr: &TcpHeader, payload_len: usize, now: SimTime) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        let fin_offset = c.snd_buf.len() as u64; // FIN occupies this offset
        let ack_off = {
            let raw = hdr.ack.wrapping_sub(c.iss).wrapping_sub(1);
            raw as u64
        };
        c.snd_wnd = unscale_window(hdr.window);

        if ack_off > fin_offset + 1 {
            return; // nonsense ack beyond anything we sent
        }

        if ack_off > c.snd_una {
            // New data acknowledged.
            c.snd_una = ack_off;
            // A late ACK for pre-RTO flight can outrun a rolled-back
            // snd_nxt (go-back-N); sending resumes from the ACK point.
            if c.snd_nxt < c.snd_una {
                c.snd_nxt = c.snd_una;
            }
            c.dup_acks = 0;

            // RTT sample (Karn-safe: sample invalidated on retransmit).
            if let Some((target, sent_at)) = c.rtt_sample {
                if c.snd_una >= target {
                    let sample = now.since(sent_at);
                    update_rtt(c, sample, &self.cfg);
                    c.rtt_sample = None;
                }
            }

            if let Some(recover) = c.recover {
                if c.snd_una >= recover {
                    // Exit fast recovery (deflate).
                    c.cwnd = c.ssthresh;
                    c.recover = None;
                } else {
                    // Partial ACK: retransmit the next hole, stay in recovery.
                    self.retransmit_head(conn, now);
                    return;
                }
            } else if c.cwnd < c.ssthresh {
                // Slow start.
                c.cwnd += self.cfg.mss as u64;
            } else {
                // Congestion avoidance: +MSS per cwnd-worth of ACKs.
                let inc = (self.cfg.mss as u64 * self.cfg.mss as u64 / c.cwnd).max(1);
                c.cwnd += inc;
            }

            if c.fin_sent && c.snd_una > fin_offset {
                c.fin_acked = true;
            }

            // Re-arm or cancel the RTO timer.
            if c.flight_size() > 0 || (c.fin_sent && !c.fin_acked) {
                self.arm_timer(conn, now);
            } else {
                c.timer_armed = false;
                c.timer_gen += 1;
            }
            self.pump(conn, now);
        } else if ack_off == c.snd_una
            && c.flight_size() > 0
            && payload_len == 0
            && !hdr.flags.syn
            && !hdr.flags.fin
        {
            // Duplicate ACK.
            c.dup_acks += 1;
            if c.recover.is_some() {
                // Inflate during recovery; each dupack signals a departure.
                c.cwnd += self.cfg.mss as u64;
                self.pump(conn, now);
            } else if c.dup_acks == 3 {
                // Fast retransmit.
                let flight = c.flight_size();
                c.ssthresh = (flight / 2).max(2 * self.cfg.mss as u64);
                c.cwnd = c.ssthresh + 3 * self.cfg.mss as u64;
                c.recover = Some(c.snd_nxt);
                self.retransmit_head(conn, now);
            }
        }
    }

    /// Retransmit the segment at `snd_una` (or the FIN if all data acked).
    fn retransmit_head(&mut self, conn: ConnId, now: SimTime) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        c.rtt_sample = None; // Karn
        let data_len = c.snd_buf.len() as u64;
        if c.snd_una >= data_len {
            if c.fin_sent {
                Self::emit_fin(&mut self.segments, c, self.cfg.recv_window);
            }
        } else {
            let end = (c.snd_una + self.cfg.mss as u64).min(data_len);
            let seg = c.snd_buf[c.snd_una as usize..end as usize].to_vec();
            Self::emit_data(&mut self.segments, c, c.snd_una, seg, self.cfg.recv_window);
        }
        self.arm_timer(conn, now);
    }

    /// Transmit as much new data (and possibly the FIN) as windows allow.
    fn pump(&mut self, conn: ConnId, now: SimTime) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        if !matches!(c.state, State::Established | State::Closing) {
            return;
        }
        let data_len = c.snd_buf.len() as u64;
        let mut sent_any = false;

        while c.snd_nxt < data_len {
            let wnd = c.send_window();
            let in_flight = c.flight_size();
            if in_flight >= wnd {
                break;
            }
            let budget = (wnd - in_flight).min(self.cfg.mss as u64);
            let end = (c.snd_nxt + budget).min(data_len);
            if end == c.snd_nxt {
                break;
            }
            let seg = c.snd_buf[c.snd_nxt as usize..end as usize].to_vec();
            let offset = c.snd_nxt;
            c.snd_nxt = end;
            // One RTT sample at a time.
            if c.rtt_sample.is_none() {
                c.rtt_sample = Some((end, now));
            }
            Self::emit_data(&mut self.segments, c, offset, seg, self.cfg.recv_window);
            sent_any = true;
        }

        // FIN once all data is out (it rides after the final byte).
        if c.fin_queued && !c.fin_sent && c.snd_nxt == data_len && c.flight_size() < c.send_window()
        {
            c.fin_sent = true;
            c.snd_nxt = data_len + 1; // FIN consumes one sequence slot
            Self::emit_fin(&mut self.segments, c, self.cfg.recv_window);
            sent_any = true;
        }

        if sent_any && !c.timer_armed {
            self.arm_timer(conn, now);
        }
    }

    fn emit_data(
        segments: &mut Vec<SegmentOut>,
        c: &Conn,
        offset: u64,
        payload: Vec<u8>,
        recv_window: u32,
    ) {
        let hdr = TcpHeader {
            src_port: c.local_port,
            dst_port: c.peer_port,
            seq: c.wire_seq(offset),
            ack: c.wire_ack(),
            flags: TcpFlags::ACK,
            window: wire_window(recv_window),
        };
        segments.push(SegmentOut { dst_ip: c.peer_ip, header: hdr, payload });
    }

    fn emit_fin(segments: &mut Vec<SegmentOut>, c: &Conn, recv_window: u32) {
        let hdr = TcpHeader {
            src_port: c.local_port,
            dst_port: c.peer_port,
            seq: c.wire_seq(c.snd_buf.len() as u64),
            ack: c.wire_ack(),
            flags: TcpFlags::FIN_ACK,
            window: wire_window(recv_window),
        };
        segments.push(SegmentOut { dst_ip: c.peer_ip, header: hdr, payload: Vec::new() });
    }

    fn send_ack(&mut self, conn: ConnId) {
        let Some(c) = self.conns.get(&conn) else { return };
        let hdr = TcpHeader {
            src_port: c.local_port,
            dst_port: c.peer_port,
            seq: c.wire_seq(c.snd_nxt),
            ack: c.wire_ack(),
            flags: TcpFlags::ACK,
            window: wire_window(self.cfg.recv_window),
        };
        self.segments.push(SegmentOut { dst_ip: c.peer_ip, header: hdr, payload: Vec::new() });
    }

    fn process_data(&mut self, conn: ConnId, hdr: &TcpHeader, payload: &[u8], now: SimTime) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        let seg_off = c.peer_offset(hdr.seq);

        if !payload.is_empty() {
            if seg_off < 0 {
                // Entirely before the stream start — stray; just ack.
                self.send_ack(conn);
                return;
            }
            let seg_off = seg_off as u64;
            if seg_off <= c.rcv_nxt {
                // In-order (possibly overlapping retransmission).
                let skip = (c.rcv_nxt - seg_off) as usize;
                if skip < payload.len() {
                    let mut delivered = payload[skip..].to_vec();
                    c.rcv_nxt += delivered.len() as u64;
                    // Drain contiguous out-of-order segments.
                    while let Some((&off, _)) = c.ooo.first_key_value() {
                        if off > c.rcv_nxt {
                            break;
                        }
                        let (off, buf) = c.ooo.pop_first().expect("checked non-empty");
                        let skip = (c.rcv_nxt - off) as usize;
                        if skip < buf.len() {
                            delivered.extend_from_slice(&buf[skip..]);
                            c.rcv_nxt = off + buf.len() as u64;
                        }
                    }
                    let id = c.id;
                    self.events.push(TcpEvent::Data { conn: id, data: delivered });
                }
            } else {
                // Out of order: buffer (keep the longest variant per offset).
                let entry = c.ooo.entry(seg_off).or_default();
                if entry.len() < payload.len() {
                    *entry = payload.to_vec();
                }
            }
        }

        let Some(c) = self.conns.get_mut(&conn) else { return };
        if hdr.flags.fin {
            let fin_off = {
                let base = c.peer_offset(hdr.seq);
                (base.max(0) as u64) + payload.len() as u64
            };
            c.peer_fin = Some(fin_off);
        }
        if let Some(fin_off) = c.peer_fin {
            if c.rcv_nxt == fin_off && !c.peer_fin_processed {
                c.peer_fin_processed = true;
                c.rcv_nxt += 1; // FIN consumes one sequence slot
                if !c.eof_delivered {
                    c.eof_delivered = true;
                    let id = c.id;
                    self.events.push(TcpEvent::Closed { conn: id });
                }
                // Passive close: if the app never queued data and never
                // closed, close now so the handshake completes.
                if !c.fin_queued {
                    c.fin_queued = true;
                    if c.state == State::Established {
                        c.state = State::Closing;
                    }
                }
            }
        }

        self.send_ack(conn);
        self.pump(conn, now);
    }

    /// Sender-side completion check: FIN acked ⇒ notify and drop state.
    fn maybe_finish(&mut self, conn: ConnId) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        if c.fin_acked && c.state != State::Done {
            c.state = State::Done;
            c.timer_armed = false;
            c.timer_gen += 1;
            if !c.eof_delivered {
                c.eof_delivered = true;
                let id = c.id;
                self.events.push(TcpEvent::Closed { conn: id });
            }
            // Keep the tuple mapping so late retransmissions from the peer
            // can still be acked; drop fully once the peer is also done.
            if c.peer_fin_processed {
                self.drop_conn(conn);
            }
        } else if c.state != State::Done {
            // Receiver side: both FINs exchanged?
            if c.peer_fin_processed && c.fin_acked {
                self.drop_conn(conn);
            }
        }
    }

    fn drop_conn(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.remove(&conn) {
            self.by_tuple.remove(&(c.peer_ip, c.peer_port, c.local_port));
        }
    }

    fn arm_timer(&mut self, conn: ConnId, now: SimTime) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        c.timer_gen += 1;
        c.timer_armed = true;
        self.timers.push(TimerRequest {
            conn,
            deadline: now + c.rto,
            generation: c.timer_gen,
        });
    }
}

impl Conn {
    /// Current cumulative ACK value on the wire.
    fn wire_ack(&self) -> u32 {
        debug_assert!(self.rcv_nxt < u32::MAX as u64);
        self.irs.wrapping_add(1).wrapping_add(self.rcv_nxt as u32)
    }
}

fn update_rtt(c: &mut Conn, sample: SimDuration, cfg: &TcpConfig) {
    match c.srtt {
        None => {
            c.srtt = Some(sample);
            c.rttvar = SimDuration::from_nanos(sample.as_nanos() / 2);
        }
        Some(srtt) => {
            // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - sample|
            //           srtt   = 7/8 srtt   + 1/8 sample
            let diff = if srtt >= sample { srtt - sample } else { sample - srtt };
            c.rttvar = SimDuration::from_nanos(
                (3 * c.rttvar.as_nanos() + diff.as_nanos()) / 4,
            );
            c.srtt =
                Some(SimDuration::from_nanos((7 * srtt.as_nanos() + sample.as_nanos()) / 8));
        }
    }
    let rto = SimDuration::from_nanos(
        c.srtt.expect("just set").as_nanos() + 4 * c.rttvar.as_nanos().max(1_000_000),
    );
    c.rto = rto.max(cfg.min_rto).min(cfg.max_rto);
}

#[cfg(test)]
mod tests {
    use super::*;

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// A zero-latency fake network: repeatedly exchange segments between
    /// two hosts until quiescent. `drop_filter(from_a, header, payload_len)`
    /// returns true to drop a segment.
    fn exchange(
        a: &mut TcpHost,
        b: &mut TcpHost,
        now: SimTime,
        mut drop_filter: impl FnMut(bool, &TcpHeader, usize) -> bool,
    ) {
        for _round in 0..10_000 {
            let from_a = a.take_segments();
            let from_b = b.take_segments();
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            for s in from_a {
                if !drop_filter(true, &s.header, s.payload.len()) {
                    b.on_segment(now, A_IP, &s.header, &s.payload);
                }
            }
            for s in from_b {
                if !drop_filter(false, &s.header, s.payload.len()) {
                    a.on_segment(now, B_IP, &s.header, &s.payload);
                }
            }
        }
        panic!("exchange did not quiesce");
    }

    fn pair() -> (TcpHost, TcpHost) {
        (TcpHost::new(A_IP, TcpConfig::default()), TcpHost::new(B_IP, TcpConfig::default()))
    }

    fn collect_data(events: &[TcpEvent]) -> Vec<u8> {
        let mut out = Vec::new();
        for e in events {
            if let TcpEvent::Data { data, .. } = e {
                out.extend_from_slice(data);
            }
        }
        out
    }

    #[test]
    fn handshake_and_small_transfer() {
        let (mut a, mut b) = pair();
        b.listen(7100);
        let conn = a.next_conn;
        a.next_conn += 1;
        a.connect(conn, B_IP, 7100, SimTime::ZERO);
        exchange(&mut a, &mut b, SimTime(1), |_, _, _| false);

        let ev_a = a.take_events();
        assert!(matches!(ev_a[0], TcpEvent::Connected { .. }), "{ev_a:?}");
        let ev_b = b.take_events();
        assert!(matches!(ev_b[0], TcpEvent::Accepted { local_port: 7100, .. }), "{ev_b:?}");

        a.send(conn, b"hello edge", SimTime(2));
        a.close(conn, SimTime(2));
        exchange(&mut a, &mut b, SimTime(3), |_, _, _| false);

        let ev_b = b.take_events();
        assert_eq!(collect_data(&ev_b), b"hello edge");
        assert!(
            ev_b.iter().any(|e| matches!(e, TcpEvent::Closed { .. })),
            "receiver sees EOF: {ev_b:?}"
        );
        let ev_a = a.take_events();
        assert!(
            ev_a.iter().any(|e| matches!(e, TcpEvent::Closed { .. })),
            "sender learns completion: {ev_a:?}"
        );
    }

    #[test]
    fn bulk_transfer_multiple_segments() {
        let (mut a, mut b) = pair();
        b.listen(7100);
        let conn = a.next_conn;
        a.next_conn += 1;
        a.connect(conn, B_IP, 7100, SimTime::ZERO);
        exchange(&mut a, &mut b, SimTime(1), |_, _, _| false);
        a.take_events();
        b.take_events();

        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        a.send(conn, &data, SimTime(2));
        a.close(conn, SimTime(2));
        exchange(&mut a, &mut b, SimTime(3), |_, _, _| false);

        assert_eq!(collect_data(&b.take_events()), data);
    }

    #[test]
    fn lost_data_segment_recovers_via_fast_retransmit() {
        let (mut a, mut b) = pair();
        b.listen(7100);
        let conn = a.next_conn;
        a.next_conn += 1;
        a.connect(conn, B_IP, 7100, SimTime::ZERO);
        exchange(&mut a, &mut b, SimTime(1), |_, _, _| false);
        a.take_events();
        b.take_events();

        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 253) as u8).collect();
        a.send(conn, &data, SimTime(2));
        a.close(conn, SimTime(2));

        // Drop exactly one data segment (the 3rd) once.
        let mut dropped = 0;
        let mut count = 0;
        exchange(&mut a, &mut b, SimTime(3), |from_a, _h, plen| {
            if from_a && plen > 0 {
                count += 1;
                if count == 3 && dropped == 0 {
                    dropped += 1;
                    return true;
                }
            }
            false
        });
        assert_eq!(dropped, 1, "the drop actually happened");
        assert_eq!(collect_data(&b.take_events()), data, "stream intact after loss");
    }

    #[test]
    fn lost_syn_recovers_via_rto() {
        let (mut a, mut b) = pair();
        b.listen(7100);
        let conn = a.next_conn;
        a.next_conn += 1;
        a.connect(conn, B_IP, 7100, SimTime::ZERO);

        // Drop the first SYN.
        let segs = a.take_segments();
        assert_eq!(segs.len(), 1);
        assert!(segs[0].header.flags.syn);

        // Fire the connect RTO.
        let timers = a.take_timer_requests();
        assert_eq!(timers.len(), 1);
        a.on_timer(timers[0].conn, timers[0].generation, timers[0].deadline);

        exchange(&mut a, &mut b, timers[0].deadline, |_, _, _| false);
        assert!(a.take_events().iter().any(|e| matches!(e, TcpEvent::Connected { .. })));
    }

    #[test]
    fn rto_go_back_n_recovers_tail_loss() {
        let (mut a, mut b) = pair();
        b.listen(7100);
        let conn = a.next_conn;
        a.next_conn += 1;
        a.connect(conn, B_IP, 7100, SimTime::ZERO);
        exchange(&mut a, &mut b, SimTime(1), |_, _, _| false);
        a.take_events();
        b.take_events();

        // Send less than one window so no dupacks can be generated, then
        // drop the final data segment: only RTO can recover.
        let data = vec![7u8; 3 * 1400];
        a.send(conn, &data, SimTime(2));
        let mut data_segs = 0;
        exchange(&mut a, &mut b, SimTime(3), |from_a, _h, plen| {
            if from_a && plen > 0 {
                data_segs += 1;
                return data_segs == 3; // drop the 3rd and final segment
            }
            false
        });
        assert!(collect_data(&b.take_events()).len() < data.len());

        // Fire the pending RTO (latest generation wins).
        let t = a
            .take_timer_requests()
            .into_iter()
            .max_by_key(|t| t.generation)
            .expect("timer armed");
        a.on_timer(t.conn, t.generation, t.deadline);
        exchange(&mut a, &mut b, t.deadline, |_, _, _| false);

        a.close(conn, t.deadline);
        exchange(&mut a, &mut b, t.deadline, |_, _, _| false);
        let got = collect_data(&b.take_events());
        assert_eq!(got.len(), data.len() - 2 * 1400, "remaining bytes arrive after RTO");
    }

    #[test]
    fn stale_timer_generation_is_ignored() {
        let (mut a, mut b) = pair();
        b.listen(7100);
        let conn = a.next_conn;
        a.next_conn += 1;
        a.connect(conn, B_IP, 7100, SimTime::ZERO);
        let stale = a.take_timer_requests()[0];
        exchange(&mut a, &mut b, SimTime(1), |_, _, _| false);
        a.take_events();

        let segs_before = a.take_segments().len();
        a.on_timer(stale.conn, stale.generation, SimTime(2));
        assert_eq!(a.take_segments().len(), segs_before, "stale timer does nothing");
    }

    #[test]
    fn cwnd_grows_in_slow_start() {
        let (mut a, mut b) = pair();
        b.listen(7100);
        let conn = a.next_conn;
        a.next_conn += 1;
        a.connect(conn, B_IP, 7100, SimTime::ZERO);
        exchange(&mut a, &mut b, SimTime(1), |_, _, _| false);

        let before = a.conns[&conn].cwnd;
        let data = vec![1u8; 200_000];
        a.send(conn, &data, SimTime(2));
        exchange(&mut a, &mut b, SimTime(3), |_, _, _| false);
        let after = a.conns[&conn].cwnd;
        assert!(after > before, "cwnd grew: {before} -> {after}");
    }

    #[test]
    fn loss_halves_effective_window() {
        let (mut a, mut b) = pair();
        b.listen(7100);
        let conn = a.next_conn;
        a.next_conn += 1;
        a.connect(conn, B_IP, 7100, SimTime::ZERO);
        exchange(&mut a, &mut b, SimTime(1), |_, _, _| false);

        let data = vec![1u8; 500_000];
        a.send(conn, &data, SimTime(2));
        let mut count = 0;
        exchange(&mut a, &mut b, SimTime(3), |from_a, _h, plen| {
            if from_a && plen > 0 {
                count += 1;
                return count == 20; // drop one mid-stream segment
            }
            false
        });
        let c = &a.conns[&conn];
        assert!(
            c.ssthresh < TcpConfig::default().initial_ssthresh,
            "ssthresh reduced after loss: {}",
            c.ssthresh
        );
        assert_eq!(collect_data(&b.take_events()), data);
    }

    #[test]
    fn two_simultaneous_connections_are_independent() {
        let (mut a, mut b) = pair();
        b.listen(7100);
        b.listen(7200);
        let c1 = a.next_conn;
        a.next_conn += 1;
        let c2 = a.next_conn;
        a.next_conn += 1;
        a.connect(c1, B_IP, 7100, SimTime::ZERO);
        a.connect(c2, B_IP, 7200, SimTime::ZERO);
        exchange(&mut a, &mut b, SimTime(1), |_, _, _| false);
        a.take_events();
        let mut port_of = std::collections::HashMap::new();
        for e in b.take_events() {
            if let TcpEvent::Accepted { conn, local_port, .. } = e {
                port_of.insert(conn, local_port);
            }
        }

        a.send(c1, b"first", SimTime(2));
        a.send(c2, b"second", SimTime(2));
        a.close(c1, SimTime(2));
        a.close(c2, SimTime(2));
        exchange(&mut a, &mut b, SimTime(3), |_, _, _| false);

        let evs = b.take_events();
        let mut by_port: Vec<(u16, Vec<u8>)> = Vec::new();
        for e in &evs {
            if let TcpEvent::Data { conn, data } = e {
                by_port.push((port_of[conn], data.clone()));
            }
        }
        assert!(by_port.contains(&(7100, b"first".to_vec())));
        assert!(by_port.contains(&(7200, b"second".to_vec())));
    }

    #[test]
    fn syn_to_non_listening_port_is_dropped() {
        let (mut a, mut b) = pair();
        let conn = a.next_conn;
        a.next_conn += 1;
        a.connect(conn, B_IP, 9999, SimTime::ZERO);
        let segs = a.take_segments();
        for s in segs {
            b.on_segment(SimTime(1), A_IP, &s.header, &s.payload);
        }
        assert!(b.take_segments().is_empty(), "no response to closed port");
        assert_eq!(b.conn_count(), 0);
    }

    #[test]
    fn rtt_estimator_tracks_sample() {
        let mut c = TcpHost::new(A_IP, TcpConfig::default()).new_conn(1, B_IP, 1, 2, 0);
        let cfg = TcpConfig::default();
        update_rtt(&mut c, SimDuration::from_millis(40), &cfg);
        assert_eq!(c.srtt.unwrap(), SimDuration::from_millis(40));
        assert_eq!(c.rto, SimDuration::from_millis(120).max(cfg.min_rto));
        // Converges toward a stable series of samples.
        for _ in 0..50 {
            update_rtt(&mut c, SimDuration::from_millis(60), &cfg);
        }
        let srtt = c.srtt.unwrap().as_millis_f64();
        assert!((srtt - 60.0).abs() < 2.0, "srtt converged: {srtt}");
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn window_scale_roundtrips_and_rounds_up() {
        assert_eq!(unscale_window(wire_window(1024 * 1024)), 1024 * 1024);
        assert_eq!(unscale_window(wire_window(64)), 64);
        // Non-multiple rounds up, never to zero.
        assert!(unscale_window(wire_window(65)) >= 65);
        assert!(wire_window(1) > 0);
        assert_eq!(wire_window(0), 0);
    }

    #[test]
    fn sender_respects_peer_receive_window() {
        // Tiny receiver window: the sender must not exceed it in flight.
        let small = TcpConfig { recv_window: 4096, ..TcpConfig::default() };
        let mut a = TcpHost::new(A_IP, TcpConfig::default());
        let mut b = TcpHost::new(B_IP, small);
        b.listen(7100);
        let conn = a.alloc_conn_id();
        a.connect(conn, B_IP, 7100, SimTime(0));

        // Handshake.
        for _ in 0..4 {
            for s in a.take_segments() {
                b.on_segment(SimTime(1), A_IP, &s.header, &s.payload);
            }
            for s in b.take_segments() {
                a.on_segment(SimTime(1), B_IP, &s.header, &s.payload);
            }
        }
        a.take_events();
        b.take_events();

        // Queue much more than the window; count unacked bytes in flight.
        a.send(conn, &vec![0u8; 100_000], SimTime(2));
        let in_flight: usize = a.take_segments().iter().map(|s| s.payload.len()).sum();
        assert!(in_flight <= 4096 + 64, "flight {in_flight} bounded by peer window");
    }

    #[test]
    fn connect_gives_up_after_max_syn_retries() {
        let mut a = TcpHost::new(A_IP, TcpConfig::default());
        let conn = a.alloc_conn_id();
        a.connect(conn, B_IP, 9999, SimTime(0));
        assert_eq!(a.conn_count(), 1);
        // Fire every retransmission without ever delivering the SYN.
        for _ in 0..=CONNECT_MAX_RETRIES + 1 {
            a.take_segments();
            for t in a.take_timer_requests() {
                a.on_timer(t.conn, t.generation, t.deadline);
            }
        }
        assert_eq!(a.conn_count(), 0, "abandoned after bounded retries");
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut a, mut b) = (
            TcpHost::new(A_IP, TcpConfig::default()),
            TcpHost::new(B_IP, TcpConfig::default()),
        );
        b.listen(7100);
        let conn = a.alloc_conn_id();
        a.connect(conn, B_IP, 7100, SimTime(0));
        for _ in 0..4 {
            for s in a.take_segments() {
                b.on_segment(SimTime(1), A_IP, &s.header, &s.payload);
            }
            for s in b.take_segments() {
                a.on_segment(SimTime(1), B_IP, &s.header, &s.payload);
            }
        }
        a.take_events();
        b.take_events();

        let data: Vec<u8> = (0..7000u32).map(|i| (i % 251) as u8).collect();
        a.send(conn, &data, SimTime(2));
        // Deliver the sender's burst in REVERSE order.
        let segs = a.take_segments();
        assert!(segs.len() >= 3, "several segments in flight");
        for s in segs.iter().rev() {
            b.on_segment(SimTime(3), A_IP, &s.header, &s.payload);
        }
        let mut got = Vec::new();
        for e in b.take_events() {
            if let TcpEvent::Data { data, .. } = e {
                got.extend_from_slice(&data);
            }
        }
        assert_eq!(got, data, "reassembled in order despite reversed delivery");
    }
}
