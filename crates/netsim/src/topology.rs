//! Topology description: nodes (hosts and switches), links, port bindings,
//! and deterministic IP/MAC assignment.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Index of a node in the topology (hosts and switches share the space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A node-local port index (matches `int_dataplane::PortId`).
pub type PortId = u16;

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host: runs applications, terminates transport connections.
    Host,
    /// A P4-programmable switch: runs a data-plane program.
    Switch,
}

/// Physical characteristics of a (bidirectional, symmetric) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Line rate in bits per second (each direction).
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Egress queue capacity at each endpoint, in packets (drop-tail).
    pub queue_cap_pkts: usize,
}

impl LinkParams {
    /// The paper's emulation setting: 20 Mbit/s effective rate, 10 ms
    /// delay, and a BMv2-like queue of 64 packets.
    pub fn paper_default() -> Self {
        LinkParams {
            bandwidth_bps: 20_000_000,
            delay: SimDuration::from_millis(10),
            queue_cap_pkts: 64,
        }
    }
}

/// One endpoint's view of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortBinding {
    /// The link this port attaches to.
    pub link: LinkId,
    /// Node on the far end.
    pub peer: NodeId,
    /// Port index on the far end.
    pub peer_port: PortId,
}

/// A node in the specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node identity.
    pub id: NodeId,
    /// Human-readable name (unique).
    pub name: String,
    /// Host or switch.
    pub kind: NodeKind,
    /// Ports, in creation order.
    pub ports: Vec<PortBinding>,
}

/// A link in the specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link identity.
    pub id: LinkId,
    /// First endpoint (node, port).
    pub a: (NodeId, PortId),
    /// Second endpoint (node, port).
    pub b: (NodeId, PortId),
    /// Physical parameters.
    pub params: LinkParams,
}

impl LinkSpec {
    /// The far end of this link as seen from `node`.
    pub fn peer_of(&self, node: NodeId) -> (NodeId, PortId) {
        if self.a.0 == node {
            self.b
        } else {
            debug_assert_eq!(self.b.0, node, "node {node} is not on link {:?}", self.id);
            self.a
        }
    }
}

/// A complete network description, built incrementally.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    /// All nodes (index = `NodeId.0`).
    pub nodes: Vec<NodeSpec>,
    /// All links (index = `LinkId.0`).
    pub links: Vec<LinkSpec>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let name = name.into();
        assert!(
            self.nodes.iter().all(|n| n.name != name),
            "duplicate node name `{name}`"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSpec { id, name, kind, ports: Vec::new() });
        id
    }

    /// Add a host.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Host)
    }

    /// Add a switch.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Switch)
    }

    /// Connect two nodes; ports are allocated in creation order on each.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> LinkId {
        assert_ne!(a, b, "self-links are not supported");
        let id = LinkId(self.links.len() as u32);
        let a_port = self.nodes[a.0 as usize].ports.len() as PortId;
        let b_port = self.nodes[b.0 as usize].ports.len() as PortId;
        self.nodes[a.0 as usize].ports.push(PortBinding { link: id, peer: b, peer_port: b_port });
        self.nodes[b.0 as usize].ports.push(PortBinding { link: id, peer: a, peer_port: a_port });
        self.links.push(LinkSpec { id, a: (a, a_port), b: (b, b_port), params });
        id
    }

    /// Node spec by id.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.0 as usize]
    }

    /// Link spec by id.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0 as usize]
    }

    /// The link connecting `a` and `b` (either order), if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.links
            .iter()
            .find(|l| (l.a.0 == a && l.b.0 == b) || (l.a.0 == b && l.b.0 == a))
            .map(|l| l.id)
    }

    /// All host node ids, in creation order.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().filter(|n| n.kind == NodeKind::Host).map(|n| n.id)
    }

    /// All switch node ids, in creation order.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().filter(|n| n.kind == NodeKind::Switch).map(|n| n.id)
    }

    /// Look a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Deterministic IPv4 address of a host: `10.x.y.z` derived from the
    /// node id (`10.0.y.z` for the first 65,535 nodes, so small-fabric
    /// addresses are unchanged). Switches are transparent L3 devices and
    /// have no address. Panics past 2²⁴−2 nodes — beyond the 10/8 space —
    /// instead of silently aliasing two hosts onto one address, which at
    /// giant scale would misdeliver traffic with no diagnostic.
    pub fn host_ip(id: NodeId) -> Ipv4Addr {
        let n = id.0 + 1; // avoid .0 network address
        assert!(n < 1 << 24, "node id {} exceeds the 10/8 address space", id.0);
        Ipv4Addr::new(10, (n >> 16) as u8, (n >> 8) as u8, (n & 0xFF) as u8)
    }

    /// Inverse of [`Topology::host_ip`].
    pub fn node_of_ip(ip: Ipv4Addr) -> Option<NodeId> {
        let o = ip.octets();
        if o[0] != 10 {
            return None;
        }
        let n = ((o[1] as u32) << 16) | ((o[2] as u32) << 8) | o[3] as u32;
        n.checked_sub(1).map(NodeId)
    }

    /// Validate structural invariants; called by the simulator at build
    /// time. Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for host in self.hosts() {
            let n = self.node(host);
            if n.ports.is_empty() {
                return Err(format!("host `{}` has no links", n.name));
            }
        }
        for link in &self.links {
            for (node, port) in [link.a, link.b] {
                let spec = self.node(node);
                let bound = spec
                    .ports
                    .get(port as usize)
                    .ok_or_else(|| format!("link {:?} references missing port", link.id))?;
                if bound.link != link.id {
                    return Err(format!("port binding mismatch on `{}`", spec.name));
                }
            }
            if link.params.queue_cap_pkts == 0 {
                return Err(format!("link {:?} has zero-capacity queue", link.id));
            }
            if link.params.bandwidth_bps == 0 {
                return Err(format!("link {:?} has zero bandwidth", link.id));
            }
        }
        Ok(())
    }
}

/// A generated multipath fabric: the topology plus the node handles a
/// caller needs to attach apps, pick probers, or assert wiring.
#[derive(Debug, Clone)]
pub struct Fabric {
    /// The wired topology.
    pub topo: Topology,
    /// All hosts, leaf-major (hosts of leaf 0 first).
    pub hosts: Vec<NodeId>,
    /// Switch tiers, host-facing tier first: `tiers[0]` = leaves/edges,
    /// `tiers[1]` = spines/aggregation, `tiers[2]` = core (fat-tree only).
    pub tiers: Vec<Vec<NodeId>>,
}

impl Fabric {
    /// Every switch of every tier, in tier order.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tiers.iter().flatten().copied()
    }

    /// The leaf (edge) switch a host attaches to.
    pub fn leaf_of(&self, host: NodeId) -> NodeId {
        self.topo.node(host).ports[0].peer
    }
}

/// Parameters of a two-tier leaf–spine Clos fabric: every leaf connects
/// to every spine (full bipartite), hosts hang off leaves. Any two hosts
/// on different leaves have exactly `spines` equal-cost paths.
#[derive(Debug, Clone, Copy)]
pub struct ClosParams {
    /// Spine (top-tier) switch count — the ECMP fan-out.
    pub spines: u32,
    /// Leaf (host-facing) switch count.
    pub leaves: u32,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: u32,
    /// Link parameters used fabric-wide (uniform ⇒ equal-cost tiers).
    pub link: LinkParams,
}

impl ClosParams {
    /// A 512-switch datacenter-scale fabric: 480 leaves × 32 spines,
    /// 2 hosts per leaf (960 hosts), paper-default links.
    pub fn datacenter() -> Self {
        ClosParams {
            spines: 32,
            leaves: 480,
            hosts_per_leaf: 2,
            link: LinkParams::paper_default(),
        }
    }

    /// Shrink both switch tiers and the host count by `scale` in (0, 1],
    /// keeping the fabric a valid multipath Clos (≥ 2 spines, ≥ 2 leaves).
    pub fn scaled(self, scale: f64) -> Self {
        let s = scale.clamp(0.0, 1.0);
        ClosParams {
            spines: ((self.spines as f64 * s).round() as u32).max(2),
            leaves: ((self.leaves as f64 * s).round() as u32).max(2),
            hosts_per_leaf: self.hosts_per_leaf.max(1),
            link: self.link,
        }
    }

    /// Build the fabric. Node creation order (and therefore id order) is
    /// hosts leaf-major, then leaves, then spines; links are host
    /// attachments first, then the leaf×spine bipartite mesh — all
    /// deterministic, so same params ⇒ byte-identical topology.
    pub fn build(&self) -> Fabric {
        self.build_tiered(self.link)
    }

    /// [`ClosParams::build`] with a distinct link parameter set for the
    /// leaf–spine uplinks (`self.link` still covers host attachments).
    /// Tiered delays give the domain partitioner a slow tier to cut on
    /// — lookahead = the uplink delay — and, chosen non-round (e.g.
    /// `12_000_019` ns), avoid exact-nanosecond arrival coincidences
    /// between tiers. Same node/link creation order as `build`, so
    /// `build_tiered(self.link)` is byte-identical to `build()`.
    pub fn build_tiered(&self, uplink: LinkParams) -> Fabric {
        assert!(self.spines >= 1 && self.leaves >= 1, "empty tier");
        let mut t = Topology::new();
        let hosts: Vec<NodeId> = (0..self.leaves * self.hosts_per_leaf)
            .map(|i| t.add_host(format!("h{i}")))
            .collect();
        let leaves: Vec<NodeId> =
            (0..self.leaves).map(|i| t.add_switch(format!("leaf{i}"))).collect();
        let spines: Vec<NodeId> =
            (0..self.spines).map(|i| t.add_switch(format!("spine{i}"))).collect();
        for (i, &h) in hosts.iter().enumerate() {
            t.add_link(h, leaves[i / self.hosts_per_leaf as usize], self.link);
        }
        for &l in &leaves {
            for &s in &spines {
                t.add_link(l, s, uplink);
            }
        }
        Fabric { topo: t, hosts, tiers: vec![leaves, spines] }
    }
}

/// Parameters of a classic k-ary fat-tree: `k` pods of `k/2` edge and
/// `k/2` aggregation switches, `(k/2)²` core switches; edge *e* of every
/// pod connects to all pod aggregations, aggregation *a* connects to core
/// group *a* (cores `a·k/2 .. (a+1)·k/2`).
#[derive(Debug, Clone, Copy)]
pub struct FatTreeParams {
    /// Pod arity; must be even and ≥ 2.
    pub k: u32,
    /// Hosts per edge switch (classic fat-tree uses `k/2`).
    pub hosts_per_edge: u32,
    /// Link parameters used fabric-wide.
    pub link: LinkParams,
}

impl FatTreeParams {
    /// Build the fat-tree. Creation order: hosts (pod-, then edge-major),
    /// edges, aggregations, cores.
    pub fn build(&self) -> Fabric {
        assert!(self.k >= 2 && self.k.is_multiple_of(2), "fat-tree arity must be even, got {}", self.k);
        let (k, half) = (self.k, self.k / 2);
        let mut t = Topology::new();
        let hosts: Vec<NodeId> = (0..k * half * self.hosts_per_edge)
            .map(|i| t.add_host(format!("h{i}")))
            .collect();
        let edges: Vec<NodeId> =
            (0..k * half).map(|i| t.add_switch(format!("edge{i}"))).collect();
        let aggs: Vec<NodeId> =
            (0..k * half).map(|i| t.add_switch(format!("agg{i}"))).collect();
        let cores: Vec<NodeId> =
            (0..half * half).map(|i| t.add_switch(format!("core{i}"))).collect();
        for (i, &h) in hosts.iter().enumerate() {
            t.add_link(h, edges[i / self.hosts_per_edge as usize], self.link);
        }
        for pod in 0..k {
            for e in 0..half {
                for a in 0..half {
                    t.add_link(
                        edges[(pod * half + e) as usize],
                        aggs[(pod * half + a) as usize],
                        self.link,
                    );
                }
            }
            for a in 0..half {
                for c in 0..half {
                    t.add_link(
                        aggs[(pod * half + a) as usize],
                        cores[(a * half + c) as usize],
                        self.link,
                    );
                }
            }
        }
        Fabric { topo: t, hosts, tiers: vec![edges, aggs, cores] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        let l1 = t.add_link(h1, s1, LinkParams::paper_default());
        let l2 = t.add_link(s1, h2, LinkParams::paper_default());

        assert_eq!(t.hosts().collect::<Vec<_>>(), vec![h1, h2]);
        assert_eq!(t.switches().collect::<Vec<_>>(), vec![s1]);
        assert_eq!(t.node_by_name("s1"), Some(s1));
        assert_eq!(t.node(h1).ports[0], PortBinding { link: l1, peer: s1, peer_port: 0 });
        assert_eq!(t.node(s1).ports[1], PortBinding { link: l2, peer: h2, peer_port: 0 });
        assert_eq!(t.link_between(h1, s1), Some(l1));
        assert_eq!(t.link_between(h2, s1), Some(l2), "order-insensitive");
        assert_eq!(t.link_between(h1, h2), None);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn peer_of_both_sides() {
        let mut t = Topology::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        t.add_link(a, b, LinkParams::paper_default());
        let l = t.link(LinkId(0));
        assert_eq!(l.peer_of(a), (b, 0));
        assert_eq!(l.peer_of(b), (a, 0));
    }

    #[test]
    fn ip_assignment_roundtrips() {
        // Boundary values straddle every octet carry, including the
        // 65,534/65,535 edge where the old two-octet scheme would have
        // silently aliased giant-fabric hosts.
        for id in [0u32, 1, 5, 254, 255, 256, 1000, 65_533, 65_534, 65_535, 1_000_000] {
            let ip = Topology::host_ip(NodeId(id));
            assert_eq!(Topology::node_of_ip(ip), Some(NodeId(id)), "{ip}");
        }
        // Small ids keep their historical 10.0.x.y form.
        assert_eq!(Topology::host_ip(NodeId(0)), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(Topology::host_ip(NodeId(65_534)), Ipv4Addr::new(10, 0, 255, 255));
        assert_eq!(Topology::host_ip(NodeId(65_535)), Ipv4Addr::new(10, 1, 0, 0));
        // Distinctness at the boundary (the aliasing the assert guards).
        assert_ne!(Topology::host_ip(NodeId(65_535)), Topology::host_ip(NodeId(65_535 + 256)));
        assert_eq!(Topology::host_ip(NodeId(0)), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(Topology::node_of_ip(Ipv4Addr::new(192, 168, 0, 1)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add_host("x");
        t.add_host("x");
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = Topology::new();
        let a = t.add_host("a");
        t.add_link(a, a, LinkParams::paper_default());
    }

    #[test]
    fn validate_catches_linkless_host() {
        let mut t = Topology::new();
        t.add_host("lonely");
        assert!(t.validate().unwrap_err().contains("no links"));
    }

    #[test]
    fn validate_catches_bad_params() {
        let mut t = Topology::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        t.add_link(
            a,
            b,
            LinkParams { bandwidth_bps: 0, delay: SimDuration::ZERO, queue_cap_pkts: 1 },
        );
        assert!(t.validate().unwrap_err().contains("zero bandwidth"));
    }
}
