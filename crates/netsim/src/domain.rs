//! Latency-based domain partitioning for the conservative parallel
//! engine.
//!
//! A *domain* is a set of nodes whose internal links are "fast" relative
//! to the links that cross domain boundaries. The conservative parallel
//! driver ([`ParSim`](crate::par::ParSim)) runs one event loop per
//! domain and synchronizes them in barrier windows whose width is the
//! **lookahead**: the minimum propagation delay over all cross-domain
//! links. A frame transmitted in window `[s, s+L)` toward another domain
//! cannot arrive before `s + L`, so every domain can process its window
//! without hearing from the others — the textbook conservative-DES
//! safety argument, with link latency as the physical source of
//! lookahead.
//!
//! The partitioner therefore wants cuts on *slow* links: it contracts
//! every host attachment (hosts always stay with their switch — their
//! traffic is the dominant event stream and must never cross a barrier)
//! and every switch-switch link faster than a threshold `θ`, then picks
//! the largest `θ` that still leaves enough connected atoms to fill the
//! requested domain count. Atoms are then grouped into contiguous
//! balanced blocks in first-node order. Everything is deterministic:
//! same topology + same request ⇒ same partition.

use crate::time::SimDuration;
use crate::topology::{NodeKind, Topology};

/// A deterministic assignment of every node to a domain, plus the
/// lookahead the cut guarantees.
#[derive(Debug, Clone)]
pub struct DomainPartition {
    /// Domain of each node (index = `NodeId.0`).
    pub domain_of: Vec<u16>,
    /// Number of domains actually produced (≤ the requested count when
    /// the topology has fewer contractible atoms than requested).
    pub domains: u16,
    /// Minimum delay over cross-domain links — the barrier window
    /// width. `u64::MAX` ns when nothing crosses (single domain or
    /// disconnected components), meaning "no synchronization needed".
    pub lookahead: SimDuration,
}

/// Plain union-find over node indices.
struct Uf(Vec<u32>);

impl Uf {
    fn new(n: usize) -> Self {
        Uf((0..n as u32).collect())
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.0[r as usize] != r {
            r = self.0[r as usize];
        }
        // Path compression.
        let mut c = x;
        while self.0[c as usize] != r {
            let next = self.0[c as usize];
            self.0[c as usize] = r;
            c = next;
        }
        r
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi as usize] = lo;
        }
    }
}

impl DomainPartition {
    /// Partition `topo` into (at most) `want` domains.
    ///
    /// `want == 1`, or a topology with no cuttable links, yields the
    /// trivial single-domain partition with unbounded lookahead.
    pub fn compute(topo: &Topology, want: u16) -> DomainPartition {
        assert!(want >= 1, "domain count must be at least 1");
        let n = topo.nodes.len();
        if n == 0 {
            return DomainPartition {
                domain_of: Vec::new(),
                domains: 1,
                lookahead: SimDuration::from_nanos(u64::MAX),
            };
        }

        // A link is *never* cuttable if it touches a host (hosts stay
        // with their switch) or has zero delay (a zero-width barrier
        // window would never advance).
        let sticky = |l: &crate::topology::LinkSpec| {
            topo.node(l.a.0).kind == NodeKind::Host
                || topo.node(l.b.0).kind == NodeKind::Host
                || l.params.delay.as_nanos() == 0
        };

        // Candidate thresholds: distinct delays of cuttable links, in
        // descending order. Contracting all links with delay < θ leaves
        // the atoms; larger θ ⇒ fewer atoms but a fatter guaranteed cut.
        let mut thresholds: Vec<u64> = topo
            .links
            .iter()
            .filter(|l| !sticky(l))
            .map(|l| l.params.delay.as_nanos())
            .collect();
        thresholds.sort_unstable_by(|a, b| b.cmp(a));
        thresholds.dedup();

        let atoms_for = |theta: u64| -> Uf {
            let mut uf = Uf::new(n);
            for l in &topo.links {
                if sticky(l) || l.params.delay.as_nanos() < theta {
                    uf.union(l.a.0.0, l.b.0.0);
                }
            }
            uf
        };
        let count_atoms = |uf: &mut Uf| -> usize {
            (0..n as u32).filter(|&i| uf.find(i) == i).count()
        };

        // Largest θ whose contraction still yields ≥ `want` atoms; fall
        // back to the finest contraction (θ = smallest distinct delay,
        // contracting only sticky links) and clamp the domain count.
        let mut chosen: Option<Uf> = None;
        for &theta in &thresholds {
            let mut uf = atoms_for(theta);
            if count_atoms(&mut uf) >= want as usize {
                chosen = Some(uf);
                break;
            }
        }
        let mut uf = chosen.unwrap_or_else(|| {
            atoms_for(thresholds.last().copied().unwrap_or(0))
        });
        let atoms = count_atoms(&mut uf);
        let domains = (want as usize).min(atoms).max(1) as u16;

        // Atom index by first-appearance order, then contiguous
        // balanced blocks of atoms per domain.
        let mut atom_idx = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut domain_of = vec![0u16; n];
        for i in 0..n as u32 {
            let r = uf.find(i) as usize;
            if atom_idx[r] == usize::MAX {
                atom_idx[r] = next;
                next += 1;
            }
            domain_of[i as usize] = (atom_idx[r] * domains as usize / atoms) as u16;
        }

        // Lookahead: the narrowest link the cut actually severed.
        let lookahead_ns = topo
            .links
            .iter()
            .filter(|l| domain_of[l.a.0.0 as usize] != domain_of[l.b.0.0 as usize])
            .map(|l| l.params.delay.as_nanos())
            .min()
            .unwrap_or(u64::MAX);

        DomainPartition {
            domain_of,
            domains,
            lookahead: SimDuration::from_nanos(lookahead_ns),
        }
    }

    /// Domain of a node.
    pub fn domain(&self, node: crate::topology::NodeId) -> u16 {
        self.domain_of[node.0 as usize]
    }

    /// Check every invariant the parallel driver relies on; returns a
    /// description of the first violation. Also exercised wholesale by
    /// the proptest below.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        if self.domain_of.len() != topo.nodes.len() {
            return Err(format!(
                "partition covers {} nodes, topology has {}",
                self.domain_of.len(),
                topo.nodes.len()
            ));
        }
        if self.domains == 0 {
            return Err("zero domains".into());
        }
        for (i, &d) in self.domain_of.iter().enumerate() {
            if d >= self.domains {
                return Err(format!("node {i} assigned domain {d} of {}", self.domains));
            }
        }
        let la = self.lookahead.as_nanos();
        for l in &topo.links {
            let (da, db) = (
                self.domain_of[l.a.0.0 as usize],
                self.domain_of[l.b.0.0 as usize],
            );
            if da != db {
                let d = l.params.delay.as_nanos();
                if d < la {
                    return Err(format!(
                        "cut link {} has delay {d} ns < lookahead {la} ns",
                        l.id.0
                    ));
                }
                if topo.node(l.a.0).kind == NodeKind::Host
                    || topo.node(l.b.0).kind == NodeKind::Host
                {
                    return Err(format!("host attachment {} crosses domains", l.id.0));
                }
            }
        }
        // Every host shares its domain with everything it attaches to.
        for node in &topo.nodes {
            if node.kind == NodeKind::Host {
                for pb in &node.ports {
                    if self.domain_of[node.id.0 as usize]
                        != self.domain_of[pb.peer.0 as usize]
                    {
                        return Err(format!("host {} split from its switch", node.id));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::topology::{ClosParams, LinkParams, NodeId};

    fn params(ns: u64) -> LinkParams {
        LinkParams {
            bandwidth_bps: 20_000_000,
            delay: SimDuration::from_nanos(ns),
            queue_cap_pkts: 64,
        }
    }

    fn tiered_clos(spines: u32, leaves: u32, hpl: u32) -> Topology {
        // Host attachments fast, leaf-spine uplinks slow — the shape
        // the partitioner is built for.
        ClosParams {
            spines,
            leaves,
            hosts_per_leaf: hpl,
            link: params(1_000_000),
        }
        .build_tiered(params(5_000_000))
        .topo
    }

    #[test]
    fn single_domain_is_trivial() {
        let t = tiered_clos(2, 4, 2);
        let p = DomainPartition::compute(&t, 1);
        assert_eq!(p.domains, 1);
        assert!(p.domain_of.iter().all(|&d| d == 0));
        assert_eq!(p.lookahead.as_nanos(), u64::MAX, "nothing crosses");
        p.validate(&t).unwrap();
    }

    #[test]
    fn tiered_clos_cuts_on_uplinks() {
        let t = tiered_clos(2, 4, 2);
        for want in [2u16, 4] {
            let p = DomainPartition::compute(&t, want);
            assert_eq!(p.domains, want);
            // Cuts land on the slow tier only.
            assert_eq!(p.lookahead.as_nanos(), 5_000_000);
            p.validate(&t).unwrap();
            // Hosts ride with their leaf.
            for h in 0..8u32 {
                assert_eq!(
                    p.domain(NodeId(h)),
                    p.domain(NodeId(8 + h / 2)),
                    "host {h} with leaf"
                );
            }
        }
    }

    #[test]
    fn uniform_clos_still_partitions() {
        // Uniform delays: every switch-switch link is an equal cut
        // candidate; the finest contraction (atom per switch) applies.
        let t = ClosParams {
            spines: 2,
            leaves: 4,
            hosts_per_leaf: 2,
            link: params(10_000_000),
        }
        .build()
        .topo;
        let p = DomainPartition::compute(&t, 4);
        assert_eq!(p.domains, 4);
        assert_eq!(p.lookahead.as_nanos(), 10_000_000);
        p.validate(&t).unwrap();
    }

    #[test]
    fn domain_request_clamps_to_atom_count() {
        // One switch, two hosts: a single atom no matter what we ask.
        let mut t = Topology::new();
        let s = t.add_switch("s");
        let h1 = t.add_host("h1");
        let h2 = t.add_host("h2");
        t.add_link(h1, s, params(1000));
        t.add_link(h2, s, params(1000));
        let p = DomainPartition::compute(&t, 8);
        assert_eq!(p.domains, 1);
        p.validate(&t).unwrap();
    }

    #[test]
    fn deterministic_across_recompute() {
        let t = tiered_clos(3, 6, 2);
        let a = DomainPartition::compute(&t, 4);
        let b = DomainPartition::compute(&t, 4);
        assert_eq!(a.domain_of, b.domain_of);
        assert_eq!(a.lookahead, b.lookahead);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Random multi-tier topology: a random switch tree with random
        /// extra edges, random per-link delays from a small tiered set,
        /// and hosts hung off random switches.
        fn arb_topo() -> impl Strategy<Value = (Topology, u16)> {
            (
                2usize..24,                                 // switches
                proptest::collection::vec(0usize..100, 0..20), // extra edges
                proptest::collection::vec(0usize..4, 1..40),   // hosts: switch pick
                proptest::collection::vec(0usize..4, 0..64),   // delay picks
                1u16..=6,                                   // requested domains
            )
                .prop_map(|(ns, extra, hosts, delays, want)| {
                    const TIERS: [u64; 4] = [250_000, 1_000_000, 5_000_000, 12_000_019];
                    let delay_at = |i: usize| {
                        TIERS[delays.get(i).copied().unwrap_or(i % 4) % 4]
                    };
                    let mut t = Topology::new();
                    let mut di = 0usize;
                    let sw: Vec<_> =
                        (0..ns).map(|i| t.add_switch(format!("s{i}"))).collect();
                    // Spanning tree: switch i links to an earlier switch.
                    for i in 1..ns {
                        let j = delays.get(i).copied().unwrap_or(0) % i;
                        t.add_link(sw[i], sw[j], params(delay_at(di)));
                        di += 1;
                    }
                    // Extra switch-switch edges (skip self/duplicates
                    // loosely; parallel links are legal in Topology).
                    for &e in &extra {
                        let a = e % ns;
                        let b = (e / 7 + 1 + a) % ns;
                        if a != b {
                            t.add_link(sw[a], sw[b], params(delay_at(di)));
                            di += 1;
                        }
                    }
                    // Hosts on random switches, fast attachments.
                    for (i, &pick) in hosts.iter().enumerate() {
                        let h = t.add_host(format!("h{i}"));
                        t.add_link(h, sw[pick % ns], params(250_000));
                    }
                    (t, want)
                })
        }

        proptest! {
            /// Satellite 1: every generated partition covers all nodes
            /// exactly once, every cross-domain link's latency is at
            /// least the advertised lookahead, and hosts land in the
            /// same domain as their switch — `validate` checks all
            /// three, plus domain-index range sanity.
            #[test]
            fn partition_invariants_hold(tw in arb_topo()) {
                let (t, want) = tw;
                let p = DomainPartition::compute(&t, want);
                prop_assert!(p.domains >= 1 && p.domains <= want);
                prop_assert_eq!(p.domain_of.len(), t.nodes.len());
                if let Err(e) = p.validate(&t) {
                    panic!("partition invariant violated: {e}");
                }
                // Recompute is bit-identical (pure function).
                let q = DomainPartition::compute(&t, want);
                prop_assert_eq!(p.domain_of, q.domain_of);
            }
        }
    }
}
