//! Traffic accounting: classify every frame a simulation delivers and
//! report byte/packet shares per traffic class.
//!
//! Used by the overhead experiment (the paper quantifies probing overhead
//! at 120 kbit/s ≈ 1.1 % of a 10 Mbit/s network, §III-A) and generally
//! useful when debugging who is filling a queue.

use int_packet::{L4View, ParsedPacket, PROBE_RELAY_UDP_PORT, PROBE_UDP_PORT, SCHEDULER_UDP_PORT, SCHED_CLIENT_UDP_PORT, TASK_UDP_PORT, ECHO_UDP_PORT};
use serde::{Deserialize, Serialize};

/// Traffic classes the accountant distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// INT probe packets (direct or relayed).
    Probe,
    /// Scheduler queries/responses and completion callbacks.
    Control,
    /// Task data over TCP.
    TaskData,
    /// Echo request/reply (ping).
    Ping,
    /// Everything else over UDP (iperf background and unknown).
    Background,
    /// Non-IP or unparsable frames.
    Other,
}

impl TrafficClass {
    /// Classify a raw frame.
    pub fn of(frame: &[u8]) -> TrafficClass {
        let Ok(parsed) = ParsedPacket::parse(frame) else {
            return TrafficClass::Other;
        };
        TrafficClass::of_parsed(&parsed)
    }

    /// Classify an already-parsed frame (lets the engine reuse its cached
    /// parse instead of re-walking the headers).
    pub fn of_parsed(parsed: &ParsedPacket) -> TrafficClass {
        match parsed.l4 {
            Some(L4View::Tcp(t)) => {
                if t.dst_port == TASK_UDP_PORT || t.src_port == TASK_UDP_PORT {
                    TrafficClass::TaskData
                } else if t.dst_port == SCHEDULER_UDP_PORT
                    || t.src_port == SCHEDULER_UDP_PORT
                    || t.dst_port == SCHED_CLIENT_UDP_PORT
                    || t.src_port == SCHED_CLIENT_UDP_PORT
                {
                    // Scheduler/control traffic carried over TCP counts as
                    // Control just like its UDP form; without this it fell
                    // through to Other and skewed the overhead shares.
                    TrafficClass::Control
                } else {
                    TrafficClass::Other
                }
            }
            Some(L4View::Udp(u)) => match u.dst_port {
                PROBE_UDP_PORT | PROBE_RELAY_UDP_PORT => TrafficClass::Probe,
                SCHEDULER_UDP_PORT | SCHED_CLIENT_UDP_PORT | TASK_UDP_PORT => {
                    TrafficClass::Control
                }
                ECHO_UDP_PORT => TrafficClass::Ping,
                // Ping replies: identified by source port only (the prior
                // arm already matched every dst_port == ECHO_UDP_PORT).
                _ if u.src_port == ECHO_UDP_PORT => TrafficClass::Ping,
                _ => TrafficClass::Background,
            },
            None => TrafficClass::Other,
        }
    }
}

/// Per-class byte and packet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Frames counted.
    pub packets: u64,
    /// Wire bytes counted.
    pub bytes: u64,
}

/// Accumulates per-class traffic over a simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficAccountant {
    counters: std::collections::BTreeMap<TrafficClass, ClassCounters>,
}

impl TrafficAccountant {
    /// Empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one frame.
    pub fn record(&mut self, frame: &[u8]) {
        self.record_classified(TrafficClass::of(frame), frame.len());
    }

    /// Count one frame whose class is already known (cached-parse path).
    pub fn record_classified(&mut self, class: TrafficClass, wire_len: usize) {
        let c = self.counters.entry(class).or_default();
        c.packets += 1;
        c.bytes += wire_len as u64;
    }

    /// Counters of one class.
    pub fn class(&self, class: TrafficClass) -> ClassCounters {
        self.counters.get(&class).copied().unwrap_or_default()
    }

    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.counters.values().map(|c| c.bytes).sum()
    }

    /// Byte share of a class in `[0, 1]`.
    pub fn share(&self, class: TrafficClass) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        self.class(class).bytes as f64 / total as f64
    }

    /// All classes with data, deterministic order.
    pub fn classes(&self) -> impl Iterator<Item = (TrafficClass, ClassCounters)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::{PacketBuilder, ProbePayload, TcpFlags, TcpHeader};
    use std::net::Ipv4Addr;

    fn builder() -> PacketBuilder {
        PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn classifies_probe_and_background() {
        let probe = builder().udp_msg(41000, PROBE_UDP_PORT, &ProbePayload::new(1, 0, 0));
        assert_eq!(TrafficClass::of(&probe), TrafficClass::Probe);
        let iperf = builder().udp(5001, 5001, &[0u8; 100]);
        assert_eq!(TrafficClass::of(&iperf), TrafficClass::Background);
    }

    #[test]
    fn classifies_task_tcp_both_directions() {
        let hdr = TcpHeader {
            src_port: 40000,
            dst_port: TASK_UDP_PORT,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 100,
        };
        assert_eq!(TrafficClass::of(&builder().tcp(hdr, &[0; 10])), TrafficClass::TaskData);
        let back = TcpHeader { src_port: TASK_UDP_PORT, dst_port: 40000, ..hdr };
        assert_eq!(TrafficClass::of(&builder().tcp(back, &[])), TrafficClass::TaskData);
    }

    #[test]
    fn classifies_control_and_ping() {
        let ctl = builder().udp(7002, SCHEDULER_UDP_PORT, &[1, 2, 3]);
        assert_eq!(TrafficClass::of(&ctl), TrafficClass::Control);
        let ping = builder().udp(42000, ECHO_UDP_PORT, &[0; 17]);
        assert_eq!(TrafficClass::of(&ping), TrafficClass::Ping);
        let pong = builder().udp(ECHO_UDP_PORT, 42000, &[0; 17]);
        assert_eq!(TrafficClass::of(&pong), TrafficClass::Ping);
    }

    /// Regression (ISSUE 3): a ping *reply* is recognized by its source
    /// port alone — dst is the requester's ephemeral port — and an
    /// unrelated datagram whose ports are both ephemeral stays Background.
    #[test]
    fn ping_reply_classified_by_src_port_only() {
        let reply = builder().udp(ECHO_UDP_PORT, 51123, &[0; 17]);
        assert_eq!(TrafficClass::of(&reply), TrafficClass::Ping);
        let unrelated = builder().udp(51123, 51124, &[0; 17]);
        assert_eq!(TrafficClass::of(&unrelated), TrafficClass::Background);
    }

    /// Regression (ISSUE 3): scheduler/control ports over TCP are Control,
    /// in both directions, not Other.
    #[test]
    fn tcp_on_control_ports_is_control() {
        let hdr = TcpHeader {
            src_port: 40000,
            dst_port: SCHEDULER_UDP_PORT,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 100,
        };
        assert_eq!(TrafficClass::of(&builder().tcp(hdr, &[1])), TrafficClass::Control);
        let from_sched = TcpHeader { src_port: SCHEDULER_UDP_PORT, dst_port: 40000, ..hdr };
        assert_eq!(TrafficClass::of(&builder().tcp(from_sched, &[])), TrafficClass::Control);
        let client = TcpHeader { src_port: 40000, dst_port: SCHED_CLIENT_UDP_PORT, ..hdr };
        assert_eq!(TrafficClass::of(&builder().tcp(client, &[])), TrafficClass::Control);
        let other = TcpHeader { src_port: 40000, dst_port: 40001, ..hdr };
        assert_eq!(TrafficClass::of(&builder().tcp(other, &[])), TrafficClass::Other);
    }

    #[test]
    fn garbage_is_other() {
        assert_eq!(TrafficClass::of(b"nonsense"), TrafficClass::Other);
    }

    #[test]
    fn accountant_shares_sum_to_one() {
        let mut acc = TrafficAccountant::new();
        acc.record(&builder().udp(5001, 5001, &[0u8; 1400]));
        acc.record(&builder().udp_msg(41000, PROBE_UDP_PORT, &ProbePayload::new(1, 0, 0)));
        acc.record(&builder().udp(42000, ECHO_UDP_PORT, &[0; 17]));

        let total_share: f64 = [
            TrafficClass::Probe,
            TrafficClass::Control,
            TrafficClass::TaskData,
            TrafficClass::Ping,
            TrafficClass::Background,
            TrafficClass::Other,
        ]
        .iter()
        .map(|&c| acc.share(c))
        .sum();
        assert!((total_share - 1.0).abs() < 1e-12);
        assert!(acc.share(TrafficClass::Background) > acc.share(TrafficClass::Probe));
        assert_eq!(acc.class(TrafficClass::Ping).packets, 1);
    }

    #[test]
    fn empty_accountant_is_zero() {
        let acc = TrafficAccountant::new();
        assert_eq!(acc.total_bytes(), 0);
        assert_eq!(acc.share(TrafficClass::Probe), 0.0);
        assert_eq!(acc.classes().count(), 0);
    }
}
