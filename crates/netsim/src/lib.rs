//! # int-netsim
//!
//! A packet-level discrete-event network simulator — the substrate standing
//! in for the paper's Mininet + BMv2 emulation testbed.
//!
//! * [`topology`] — hosts, P4 switches, links (bandwidth / propagation
//!   delay / drop-tail queue capacity),
//! * [`engine`] — the event loop: serialization, propagation, queuing,
//!   data-plane program invocation at ingress / enqueue / egress,
//! * [`routing`] — shortest-path route computation and installation,
//!   plus structural O(1) routing for giant Clos fabrics,
//! * [`domain`] / [`par`] — latency-based domain partitioning and the
//!   conservative parallel driver over it (byte-identical artifacts to
//!   the single-thread oracle; see DESIGN.md §5.9),
//! * [`fault`] — scheduled link/switch failures and probabilistic frame
//!   loss, executed deterministically by the engine,
//! * [`tcp`] — a TCP-Reno-style reliable transport for task transfers,
//! * [`app`] — the application framework (UDP, timers, TCP) simulated
//!   programs run on,
//! * [`queue`] / [`stats`] — drop-tail queues and ground-truth counters,
//! * [`time`] / [`event`] — nanosecond simulated time and the
//!   deterministic event queue.
//!
//! Determinism: all randomness flows from [`SimConfig::seed`]; equal seeds
//! replay identical packet-level schedules, which is how the experiment
//! harness guarantees each scheduling policy faces the *same* background
//! traffic (paper §IV).

pub mod app;
pub mod domain;
pub mod engine;
pub mod event;
pub mod fault;
pub mod par;
pub mod pool;
pub mod queue;
pub mod routing;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod trace;

pub use app::{App, AppCtx, AppOp};
pub use domain::DomainPartition;
pub use engine::{SimConfig, Simulator};
pub use int_dataplane::EcmpSelect;
pub use event::{ConnId, Event, EventQueue};
pub use fault::{FaultAction, FaultPlan, FaultState};
pub use par::ParSim;
pub use pool::{BufPool, PoolStats};
pub use queue::{DropTailQueue, QueueStats};
pub use routing::{ClosNodeKind, ClosRoutes, RouteTable, Routes};
pub use stats::NetStats;
pub use tcp::{TcpConfig, TcpEvent, TcpHost};
pub use time::{SimDuration, SimTime};
pub use trace::{TrafficAccountant, TrafficClass};
pub use topology::{
    ClosParams, Fabric, FatTreeParams, LinkId, LinkParams, NodeId, NodeKind, PortId, Topology,
};
