//! The simulator: owns the world, dispatches events, moves frames.
//!
//! ## Transmission model
//!
//! Each (node, port) has a drop-tail egress queue. When a port is idle and
//! a frame is enqueued, serialization starts immediately: the frame leaves
//! the queue, the egress hook runs (switches only — this is where probe
//! packets grow their INT record), and two events are scheduled:
//! `TxDone` after the serialization time and `Arrive` at the far end after
//! serialization + propagation.
//!
//! The effective serialization rate is `min(link rate, device egress
//! rate)`. The per-switch egress rate models the BMv2 processing ceiling
//! the paper observed (~20 Mbit/s) — links themselves were fast, the
//! software switch was the bottleneck (paper §III-C footnote 3).

use crate::app::{App, AppCtx, AppOp};
use crate::event::{ConnId, Event, EventQueue};
use crate::fault::{FaultPlan, FaultState};
use crate::pool::{BufPool, PoolStats};
use crate::queue::{DropTailQueue, QueueStats};
use crate::routing::{ClosNodeKind, ClosRoutes, RouteTable, Routes};
use crate::stats::NetStats;
use crate::tcp::{TcpConfig, TcpHost};
use crate::trace::{TrafficAccountant, TrafficClass};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, NodeKind, PortId, Topology};
use int_dataplane::{
    DataPlaneProgram, EcmpSelect, EgressCtx, EnqueueCtx, Frame, IngressCtx, IngressVerdict,
    IntProgramConfig, IntTelemetryProgram,
};
use int_obs::{DropReason, Labels, MetricsRegistry, TraceEvent, TraceKind, TraceRing};
use int_packet::{L4View, PacketBuilder, TcpHeader};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Per-port runtime state.
struct PortState {
    queue: DropTailQueue,
    transmitting: bool,
}

struct HostState {
    ip: Ipv4Addr,
    apps: Vec<Box<dyn App>>,
    /// (port, app index) — later binds shadow earlier ones.
    udp_bindings: Vec<(u16, usize)>,
    tcp: TcpHost,
    conn_owner: HashMap<ConnId, usize>,
    listener_owner: Vec<(u16, usize)>,
    rng: SmallRng,
    ports: Vec<PortState>,
}

struct SwitchState {
    program: Box<dyn DataPlaneProgram>,
    ports: Vec<PortState>,
    /// Egress serialization ceiling (BMv2 processing-rate model).
    egress_rate_bps: Option<u64>,
}

// The size skew (HostState ≫ SwitchState) is fine: `NodeState`s live in one
// `Vec` built at construction and are only ever borrowed afterwards.
#[allow(clippy::large_enum_variant)]
enum NodeState {
    Host(HostState),
    Switch(SwitchState),
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Master RNG seed; every host derives its own stream from it.
    pub seed: u64,
    /// Egress-rate ceiling applied to every switch port (None = link rate).
    /// The paper's BMv2 setup behaved like a 20 Mbit/s ceiling.
    pub switch_egress_rate_bps: Option<u64>,
    /// TCP parameters for every host.
    pub tcp: TcpConfig,
    /// Whether switches run the INT program with telemetry enabled.
    pub int_enabled: bool,
    /// Classify and count every frame put on the wire (adds one parse per
    /// transmission; off by default).
    pub account_traffic: bool,
    /// Multipath selection at every hop (hosts and switches). The default
    /// [`EcmpSelect::Primary`] keeps the pre-multipath single-route
    /// behaviour bit-for-bit; [`EcmpSelect::FlowHash`] spreads flows over
    /// equal-cost port groups — the fabric experiments' mode.
    pub ecmp: EcmpSelect,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            switch_egress_rate_bps: Some(20_000_000),
            tcp: TcpConfig::default(),
            int_enabled: true,
            account_traffic: false,
            ecmp: EcmpSelect::Primary,
        }
    }
}

/// Assemble an equal-cost port group with `primary` first.
/// `equal_cost_ports` can be empty (unreachable or self destination) —
/// the group then degenerates to the primary alone, preserving the old
/// single-port behaviour including its `unwrap_or(0)` default.
fn ecmp_group(primary: PortId, equal: Vec<PortId>) -> Vec<PortId> {
    let mut group = Vec::with_capacity(equal.len().max(1));
    group.push(primary);
    for p in equal {
        if p != primary {
            group.push(p);
        }
    }
    group
}

/// A frame crossing a domain boundary in a partitioned run: everything
/// the receiving domain needs to re-schedule the `Arrive`, plus the
/// `(sent_at, src_domain, seq)` tie-break key that makes the merged
/// injection order a pure function of the traffic (not of thread timing).
pub(crate) struct CrossMsg {
    pub(crate) at: SimTime,
    pub(crate) sent_at: SimTime,
    pub(crate) node: NodeId,
    pub(crate) port: PortId,
    pub(crate) src_domain: u16,
    pub(crate) seq: u64,
    pub(crate) frame: Box<Frame>,
}

/// Per-domain context for a partitioned run. `None` on an ordinary
/// simulator: the data path then behaves exactly as before.
pub(crate) struct DomainCtx {
    /// This simulator's domain id.
    id: u16,
    /// `of[node]` = owning domain of every node (shared across domains).
    of: Arc<Vec<u16>>,
    /// Frames headed to foreign nodes, collected until the next barrier.
    outbox: Vec<CrossMsg>,
    /// Monotone per-domain sequence for the cross-message tie-break.
    seq: u64,
}

impl DomainCtx {
    pub(crate) fn new(id: u16, of: Arc<Vec<u16>>) -> DomainCtx {
        DomainCtx { id, of, outbox: Vec::new(), seq: 0 }
    }
}

/// The discrete-event network simulator.
pub struct Simulator {
    topo: Arc<Topology>,
    routes: Arc<Routes>,
    cfg: SimConfig,
    now: SimTime,
    events: EventQueue,
    nodes: Vec<NodeState>,
    stats: NetStats,
    accounting: TrafficAccountant,
    next_trace_id: u64,
    started: bool,
    /// Freelist of frame boxes: delivered and dropped frames are recycled
    /// into the host send paths, so steady state allocates no frames.
    pool: BufPool,
    /// Fault-injection state; `None` (the default) keeps the data path
    /// identical to a fault-free build.
    faults: Option<FaultState>,
    /// Scratch op buffers for app callbacks. A stack (not a single buffer)
    /// because callbacks re-enter: `invoke_app` → `flush_tcp` → `invoke_app`.
    ops_free: Vec<Vec<AppOp>>,
    /// Deterministic metrics registry (disabled by default: every record
    /// call is one branch; see DESIGN.md §5.3).
    metrics: MetricsRegistry,
    /// Typed trace-event ring (disabled by default).
    trace: TraceRing,
    /// Scratch for draining data-plane program trace buffers.
    trace_scratch: Vec<TraceEvent>,
    /// Per-host multipath route state toward every node, indexed
    /// `[node][dst_node]`; switch rows stay empty. Built once at
    /// construction so the host send path never reconstructs a route
    /// (`RouteTable::egress_port` → `path()` allocates and reverses a
    /// `Vec<NodeId>` per call). Unlike the old single-port memo, each
    /// entry resolves to the full equal-cost port *group* (primary first),
    /// so selection can hash across ports and — crucially — fail over to a
    /// live member when a fault retires the memoized primary.
    host_uplinks: Vec<HostRouteTable>,
    /// `Some` only when this simulator is one domain of a partitioned run.
    domain: Option<DomainCtx>,
}

/// A host's build-time route state: one equal-cost port group per
/// destination node, dedup'd (a host usually has one uplink, so most
/// destinations share group 0).
#[derive(Default)]
struct HostRouteTable {
    /// `group_of[dst]` indexes into `groups`.
    group_of: Vec<u16>,
    /// Equal-cost egress port groups, primary (the pre-multipath
    /// single-route answer) first.
    groups: Vec<Vec<PortId>>,
}

impl HostRouteTable {
    fn group(&self, dst: NodeId) -> Option<&[PortId]> {
        let g = *self.group_of.get(dst.0 as usize)?;
        Some(&self.groups[g as usize])
    }
}

impl Simulator {
    /// Build a simulator: validates the topology, computes routes, creates
    /// INT-programmed switches, and installs host routes into every switch.
    pub fn new(topo: Topology, cfg: SimConfig) -> Simulator {
        topo.validate().expect("invalid topology");
        let routes = Routes::Table(RouteTable::compute(&topo));
        Self::build(Arc::new(topo), Arc::new(routes), cfg, None)
    }

    /// Build a simulator over a Clos fabric using structural O(1) routing
    /// instead of an all-pairs route table. The topology must have been
    /// produced by [`crate::topology::ClosParams::build`] /
    /// [`crate::topology::ClosParams::build_tiered`] with the same shape as
    /// `clos` — construction asserts the node count matches. This is what
    /// makes 10k-host fabrics constructible: the dense table is O(n²)
    /// memory plus n Dijkstra runs, the structural form is O(1).
    pub fn new_clos(topo: Topology, clos: ClosRoutes, cfg: SimConfig) -> Simulator {
        topo.validate().expect("invalid topology");
        assert_eq!(
            topo.nodes.len() as u32,
            clos.hosts() + clos.leaves() + clos.spines(),
            "ClosRoutes shape does not match topology"
        );
        Self::build(Arc::new(topo), Arc::new(Routes::Clos(clos)), cfg, None)
    }

    /// Shared constructor body. `domain` scopes construction to one domain
    /// of a partitioned run: foreign nodes still get (dead-weight) state so
    /// indices line up, but no routes are installed into them and no host
    /// uplink tables are built for them.
    pub(crate) fn build(
        topo: Arc<Topology>,
        routes: Arc<Routes>,
        cfg: SimConfig,
        domain: Option<DomainCtx>,
    ) -> Simulator {
        let owns = |n: NodeId| match &domain {
            Some(d) => d.of[n.0 as usize] == d.id,
            None => true,
        };

        let mut nodes = Vec::with_capacity(topo.nodes.len());
        for spec in &topo.nodes {
            let ports: Vec<PortState> = spec
                .ports
                .iter()
                .map(|pb| PortState {
                    queue: DropTailQueue::new(topo.link(pb.link).params.queue_cap_pkts),
                    transmitting: false,
                })
                .collect();
            match spec.kind {
                NodeKind::Host => {
                    let ip = Topology::host_ip(spec.id);
                    nodes.push(NodeState::Host(HostState {
                        ip,
                        apps: Vec::new(),
                        udp_bindings: Vec::new(),
                        tcp: TcpHost::new(ip, cfg.tcp),
                        conn_owner: HashMap::new(),
                        listener_owner: Vec::new(),
                        rng: SmallRng::seed_from_u64(
                            cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(spec.id.0 as u64 + 1)),
                        ),
                        ports,
                    }));
                }
                NodeKind::Switch => {
                    let mut program = Box::new(IntTelemetryProgram::new(IntProgramConfig {
                        switch_id: spec.id.0,
                        num_ports: spec.ports.len(),
                        int_enabled: cfg.int_enabled,
                    }));
                    program.set_ecmp_select(cfg.ecmp);
                    if owns(spec.id) {
                        match &*routes {
                            // Control plane: /32 ECMP routes for every host.
                            // The group's primary is the old single-path
                            // `egress_port` answer, so Primary selection
                            // forwards identically to the pre-multipath
                            // control plane.
                            Routes::Table(rt) => {
                                for host in topo.hosts() {
                                    if let Some(primary) = rt.egress_port(&topo, spec.id, host) {
                                        let group = ecmp_group(
                                            primary,
                                            rt.equal_cost_ports(&topo, spec.id, host),
                                        );
                                        program
                                            .install_host_route_multi(Topology::host_ip(host), &group);
                                    }
                                }
                            }
                            // Structural Clos control plane: a leaf holds /32s
                            // for its own hosts plus one default ECMP group
                            // over its uplinks; a spine holds one /32 per host
                            // pointing at that host's leaf. O(hosts) total
                            // routes instead of O(switches × hosts) groups.
                            Routes::Clos(c) => match c.kind_of(spec.id) {
                                ClosNodeKind::Leaf(l) => {
                                    let hpl = c.hosts_per_leaf();
                                    for j in 0..hpl {
                                        let host = NodeId(l * hpl + j);
                                        program.install_host_route(
                                            Topology::host_ip(host),
                                            j as PortId,
                                        );
                                    }
                                    program.install_route_multi(
                                        Ipv4Addr::new(0, 0, 0, 0),
                                        0,
                                        &c.leaf_uplink_ports(),
                                    );
                                }
                                ClosNodeKind::Spine(_) => {
                                    let hpl = c.hosts_per_leaf();
                                    for host in 0..c.hosts() {
                                        program.install_route(
                                            Topology::host_ip(NodeId(host)),
                                            32,
                                            c.spine_port_to_leaf(host / hpl),
                                        );
                                    }
                                }
                                ClosNodeKind::Host(_) => {
                                    unreachable!("Clos host classified as switch")
                                }
                            },
                        }
                    }
                    nodes.push(NodeState::Switch(SwitchState {
                        program,
                        ports,
                        egress_rate_bps: cfg.switch_egress_rate_bps,
                    }));
                }
            }
        }

        let n = topo.nodes.len();
        let mut host_uplinks: Vec<HostRouteTable> = (0..n).map(|_| HostRouteTable::default()).collect();
        // Clos mode leaves every row empty: a Clos host has exactly one
        // port, and `host_uplink`'s `group() == None` path already falls
        // back to port 0, so no per-destination table is needed.
        if let Routes::Table(rt) = &*routes {
            for spec in &topo.nodes {
                if matches!(spec.kind, NodeKind::Host) && owns(spec.id) {
                    let mut table = HostRouteTable::default();
                    let mut index: HashMap<Vec<PortId>, u16> = HashMap::new();
                    for d in 0..n {
                        let dst = NodeId(d as u32);
                        let primary = rt.egress_port(&topo, spec.id, dst).unwrap_or(0);
                        let group = ecmp_group(primary, rt.equal_cost_ports(&topo, spec.id, dst));
                        let g = *index.entry(group.clone()).or_insert_with(|| {
                            table.groups.push(group);
                            (table.groups.len() - 1) as u16
                        });
                        table.group_of.push(g);
                    }
                    host_uplinks[spec.id.0 as usize] = table;
                }
            }
        }

        Simulator {
            topo,
            routes,
            cfg,
            now: SimTime::ZERO,
            events: EventQueue::new(),
            nodes,
            stats: NetStats::default(),
            accounting: TrafficAccountant::new(),
            next_trace_id: 1,
            started: false,
            pool: BufPool::new(),
            faults: None,
            ops_free: Vec::new(),
            metrics: MetricsRegistry::new(),
            trace: TraceRing::default(),
            trace_scratch: Vec::new(),
            host_uplinks,
            domain,
        }
    }

    /// Install a fault plan: resolves it against the topology, schedules
    /// each transition on the event queue, and arms the runtime state.
    /// Panics on a plan referencing links or switches that do not exist.
    /// Transitions scheduled in the past fire at the current time.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let resolved = plan.resolve(&self.topo).expect("invalid fault plan");
        for &(at, action) in &resolved.events {
            let at = if at < self.now { self.now } else { at };
            self.events.push(at, Event::Fault(action));
        }
        self.faults = Some(FaultState::new(&self.topo, &resolved, self.cfg.seed));
    }

    /// Current fault state (None unless a plan was installed).
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Install an application on a host (before or after start; `on_start`
    /// runs at the next opportunity if the sim already started).
    pub fn install_app(&mut self, node: NodeId, app: Box<dyn App>) -> usize {
        let started = self.started;
        let idx = match &mut self.nodes[node.0 as usize] {
            NodeState::Host(h) => {
                h.apps.push(app);
                h.apps.len() - 1
            }
            NodeState::Switch(_) => panic!("cannot install an app on a switch"),
        };
        if started {
            self.invoke_app(node, idx, |app, ctx| app.on_start(ctx));
        }
        idx
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Engine-wide counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Frame-pool counters (how many takes hit the freelist vs allocated).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Per-class traffic accounting (empty unless
    /// [`SimConfig::account_traffic`] is set).
    pub fn traffic(&self) -> &TrafficAccountant {
        &self.accounting
    }

    /// Turn per-frame traffic accounting on or off at runtime.
    pub fn set_account_traffic(&mut self, on: bool) {
        self.cfg.account_traffic = on;
    }

    /// The metrics registry (disabled by default).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry (enable it, read series).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The trace-event ring (disabled by default).
    pub fn trace_ring(&self) -> &TraceRing {
        &self.trace
    }

    /// Mutable access to the trace ring (sampling, capacity via rebuild).
    pub fn trace_ring_mut(&mut self) -> &mut TraceRing {
        &mut self.trace
    }

    /// Enable (or disable) trace-event recording engine-wide: flips the
    /// ring *and* tells every switch data-plane program to buffer its
    /// probe-harvest / register-reset events for draining.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
        for node in &mut self.nodes {
            if let NodeState::Switch(sw) = node {
                sw.program.set_tracing(on);
            }
        }
    }

    /// The topology this simulator runs.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The dense routing table (paths, distances, hop counts).
    ///
    /// Panics on a simulator built with [`Simulator::new_clos`] — structural
    /// Clos routing has no dense table; use [`Simulator::routing`] there.
    pub fn routes(&self) -> &RouteTable {
        self.routes
            .table()
            .expect("routes(): built with structural Clos routing; use routing()")
    }

    /// The routing state in either form (dense table or structural Clos).
    pub fn routing(&self) -> &Routes {
        &self.routes
    }

    /// Ground-truth statistics of one egress queue.
    pub fn queue_stats(&self, node: NodeId, port: PortId) -> QueueStats {
        match &self.nodes[node.0 as usize] {
            NodeState::Host(h) => h.ports[port as usize].queue.stats(),
            NodeState::Switch(s) => s.ports[port as usize].queue.stats(),
        }
    }

    /// Read-only view of a switch's data-plane registers.
    pub fn switch_registers(&self, node: NodeId) -> &int_dataplane::RegisterFile {
        match &self.nodes[node.0 as usize] {
            NodeState::Switch(s) => s.program.registers(),
            NodeState::Host(_) => panic!("{node} is not a switch"),
        }
    }

    /// Downcast an installed app's state for inspection.
    pub fn app<T: 'static>(&self, node: NodeId, app_idx: usize) -> Option<&T> {
        match &self.nodes[node.0 as usize] {
            NodeState::Host(h) => h.apps.get(app_idx)?.as_any().downcast_ref::<T>(),
            NodeState::Switch(_) => None,
        }
    }

    /// Mutable downcast of an installed app's state.
    pub fn app_mut<T: 'static>(&mut self, node: NodeId, app_idx: usize) -> Option<&mut T> {
        match &mut self.nodes[node.0 as usize] {
            NodeState::Host(h) => h.apps.get_mut(app_idx)?.as_any_mut().downcast_mut::<T>(),
            NodeState::Switch(_) => None,
        }
    }

    /// Start all apps (idempotent; called automatically by `run_until`).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let hosts: Vec<(NodeId, usize)> = self
            .topo
            .hosts()
            .flat_map(|n| {
                let count = match &self.nodes[n.0 as usize] {
                    NodeState::Host(h) => h.apps.len(),
                    _ => 0,
                };
                (0..count).map(move |i| (n, i))
            })
            .collect();
        for (node, idx) in hosts {
            self.invoke_app(node, idx, |app, ctx| app.on_start(ctx));
        }
    }

    /// Run until simulated time `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: SimTime) {
        self.start();
        while let Some(at) = self.events.peek_time() {
            if at > t {
                break;
            }
            let (at, event) = self.events.pop().expect("peeked");
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.dispatch(event);
        }
        self.now = t;
    }

    /// Run for a span from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    // ------------------------------------------------------------ dispatch

    fn dispatch(&mut self, event: Event) {
        if let Event::Fault(action) = event {
            // Fault transitions are mirrored into every domain of a
            // partitioned run (each needs the state flip for its local
            // liveness checks), but only the owning domain counts and
            // traces the event, so summed stats match the oracle exactly.
            if let Some(f) = &mut self.faults {
                f.apply(action);
            }
            if self.owns_fault(action) {
                self.stats.events_processed += 1;
                self.trace_fault(action);
            }
            return;
        }
        self.stats.events_processed += 1;
        match event {
            Event::Arrive { node, port, frame } => self.handle_arrive(node, port, frame),
            Event::TxDone { node, port } => self.handle_tx_done(node, port),
            Event::AppTimer { node, app_idx, timer_id } => {
                self.invoke_app(node, app_idx, |app, ctx| app.on_timer(ctx, timer_id));
            }
            Event::TcpTimer { node, conn, generation } => {
                let now = self.now;
                if let NodeState::Host(h) = &mut self.nodes[node.0 as usize] {
                    h.tcp.on_timer(conn, generation, now);
                }
                self.flush_tcp(node);
            }
            Event::Fault(_) => unreachable!("handled above"),
        }
    }

    /// The owner of a fault transition: the `a`-endpoint's domain for link
    /// events, the subject switch's domain for switch events.
    fn owns_fault(&self, action: crate::fault::FaultAction) -> bool {
        use crate::fault::FaultAction::*;
        let Some(d) = &self.domain else { return true };
        let subject = match action {
            LinkDown(l) | LinkUp(l) => self.topo.link(l).a.0,
            SwitchFail(n) | SwitchRecover(n) => n,
        };
        d.of[subject.0 as usize] == d.id
    }

    /// Drain the cross-domain outbox (empty on an unpartitioned run).
    pub(crate) fn take_outbox(&mut self) -> Vec<CrossMsg> {
        match &mut self.domain {
            Some(d) => std::mem::take(&mut d.outbox),
            None => Vec::new(),
        }
    }

    /// Schedule cross-domain arrivals received at a barrier. Callers must
    /// pre-sort by the deterministic merge key; every `at` must be beyond
    /// the window just completed (guaranteed by the lookahead rule).
    pub(crate) fn inject_cross(&mut self, msgs: Vec<CrossMsg>) {
        for m in msgs {
            debug_assert!(m.at > self.now, "cross msg inside completed window");
            self.events.push(m.at, Event::Arrive { node: m.node, port: m.port, frame: m.frame });
        }
    }

    /// Record one drop in the metrics registry and trace ring (both
    /// disabled by default — two predictable branches on the hot path).
    fn note_drop(&mut self, node: NodeId, port: PortId, reason: DropReason) {
        self.metrics.counter_inc("sim.drops", Labels::one("node", node.0 as u64));
        self.trace.push(
            self.now.as_nanos(),
            TraceKind::Drop { node: node.0, port: port as u8, reason },
        );
    }

    /// A frame died at a host (no binding, bad parse, misaddressed).
    fn drop_at_host(&mut self, node: NodeId) {
        self.stats.drops_host += 1;
        self.note_drop(node, 0, DropReason::HostUnbound);
    }

    /// Record a fault-plan transition in the trace ring.
    fn trace_fault(&mut self, action: crate::fault::FaultAction) {
        use crate::fault::FaultAction::*;
        let (label, subject, peer) = match action {
            LinkDown(l) => {
                let spec = self.topo.link(l);
                ("link_down", spec.a.0 .0, spec.b.0 .0)
            }
            LinkUp(l) => {
                let spec = self.topo.link(l);
                ("link_up", spec.a.0 .0, spec.b.0 .0)
            }
            SwitchFail(n) => ("switch_fail", n.0, u32::MAX),
            SwitchRecover(n) => ("switch_recover", n.0, u32::MAX),
        };
        self.metrics.counter_inc("sim.faults", Labels::none());
        self.trace
            .push(self.now.as_nanos(), TraceKind::Fault { action: label, subject, peer });
    }

    fn handle_arrive(&mut self, node: NodeId, port: PortId, mut frame: Box<Frame>) {
        if let Some(f) = &self.faults {
            // The frame was in flight when the cable was pulled, or it
            // reaches a switch that died while it propagated.
            let link = self.topo.node(node).ports[port as usize].link;
            if !f.link_is_up(link) {
                self.stats.drops_link_down += 1;
                self.note_drop(node, port, DropReason::LinkDown);
                self.pool.recycle(frame);
                return;
            }
            if !f.node_is_up(node) {
                self.stats.drops_switch_down += 1;
                self.note_drop(node, port, DropReason::SwitchDown);
                self.pool.recycle(frame);
                return;
            }
        }
        match &mut self.nodes[node.0 as usize] {
            NodeState::Switch(sw) => {
                let ictx =
                    IngressCtx { now_ns: self.now.as_nanos(), switch_id: node.0, ingress_port: port };
                match sw.program.ingress(&mut frame, &ictx) {
                    IngressVerdict::Forward(eport) => {
                        self.stats.frames_forwarded += 1;
                        self.metrics
                            .counter_inc("sim.frames_forwarded", Labels::one("node", node.0 as u64));
                        self.enqueue(node, eport, frame);
                    }
                    IngressVerdict::Drop => {
                        self.stats.drops_dataplane += 1;
                        self.note_drop(node, port, DropReason::DataPlane);
                        self.pool.recycle(frame);
                    }
                }
            }
            NodeState::Host(_) => self.deliver_to_host(node, frame),
        }
    }

    /// Place a frame on an egress queue, firing the enqueue hook and
    /// starting transmission if the port is idle.
    fn enqueue(&mut self, node: NodeId, port: PortId, frame: Box<Frame>) {
        let now_ns = self.now.as_nanos();
        let rejected = match &mut self.nodes[node.0 as usize] {
            NodeState::Switch(sw) => {
                let SwitchState { program, ports, .. } = sw;
                let ps = &mut ports[port as usize];
                if ps.queue.depth_pkts() < ps.queue.capacity_pkts() {
                    // Fire the observation hook (BMv2 `enq_qdepth`): the
                    // number of packets *ahead* of this one — an idle
                    // network reports zero, so probes do not observe
                    // themselves as congestion.
                    let depth_ahead = ps.queue.depth_pkts() as u32;
                    program.on_enqueue(
                        &frame,
                        &EnqueueCtx { now_ns, port, qdepth_after_pkts: depth_ahead },
                    );
                    let rejected = ps.queue.enqueue(frame);
                    debug_assert!(rejected.is_none(), "capacity was just checked");
                    rejected
                } else {
                    ps.queue.enqueue(frame) // full: records the drop
                }
            }
            NodeState::Host(h) => h.ports[port as usize].queue.enqueue(frame),
        };
        if let Some(dropped) = rejected {
            self.stats.drops_queue_full += 1;
            self.note_drop(node, port, DropReason::QueueFull);
            self.pool.recycle(dropped);
            return;
        }
        if self.metrics.enabled() || self.trace.enabled() {
            let depth = match &self.nodes[node.0 as usize] {
                NodeState::Host(h) => h.ports[port as usize].queue.depth_pkts(),
                NodeState::Switch(s) => s.ports[port as usize].queue.depth_pkts(),
            } as u32;
            self.metrics.histogram_record(
                "sim.queue_depth_pkts",
                Labels::two("node", node.0 as u64, "port", port as u64),
                depth as u64,
            );
            self.trace.push(
                now_ns,
                TraceKind::Enqueue { node: node.0, port: port as u8, depth_pkts: depth },
            );
        }
        if !self.port_transmitting(node, port) {
            self.start_tx(node, port);
        }
    }

    fn port_transmitting(&self, node: NodeId, port: PortId) -> bool {
        match &self.nodes[node.0 as usize] {
            NodeState::Host(h) => h.ports[port as usize].transmitting,
            NodeState::Switch(s) => s.ports[port as usize].transmitting,
        }
    }

    fn handle_tx_done(&mut self, node: NodeId, port: PortId) {
        match &mut self.nodes[node.0 as usize] {
            NodeState::Host(h) => h.ports[port as usize].transmitting = false,
            NodeState::Switch(s) => s.ports[port as usize].transmitting = false,
        }
        let empty = match &self.nodes[node.0 as usize] {
            NodeState::Host(h) => h.ports[port as usize].queue.is_empty(),
            NodeState::Switch(s) => s.ports[port as usize].queue.is_empty(),
        };
        if !empty {
            self.start_tx(node, port);
        }
    }

    /// Dequeue the head frame, run egress processing, and put it on the wire.
    fn start_tx(&mut self, node: NodeId, port: PortId) {
        let now_ns = self.now.as_nanos();
        let (mut frame, egress_rate, qdepth_after) = match &mut self.nodes[node.0 as usize] {
            NodeState::Host(h) => {
                let ps = &mut h.ports[port as usize];
                let Some(frame) = ps.queue.dequeue() else { return };
                ps.transmitting = true;
                let qdepth = ps.queue.depth_pkts() as u32;
                (frame, None, qdepth)
            }
            NodeState::Switch(s) => {
                let ps = &mut s.ports[port as usize];
                let Some(mut frame) = ps.queue.dequeue() else { return };
                ps.transmitting = true;
                let qdepth = ps.queue.depth_pkts() as u32;
                let ectx = EgressCtx {
                    now_ns,
                    switch_id: node.0,
                    egress_port: port,
                    qdepth_at_deq_pkts: qdepth,
                };
                s.program.egress(&mut frame, &ectx);
                (frame, s.egress_rate_bps, qdepth)
            }
        };
        if self.trace.enabled() {
            self.trace.push(
                now_ns,
                TraceKind::Dequeue { node: node.0, port: port as u8, depth_pkts: qdepth_after },
            );
            // Pull any probe-harvest / register-reset events the egress
            // hook buffered inside the data-plane program.
            if let NodeState::Switch(s) = &mut self.nodes[node.0 as usize] {
                s.program.drain_trace(&mut self.trace_scratch);
            }
            for i in 0..self.trace_scratch.len() {
                let ev = self.trace_scratch[i];
                self.trace.push(ev.at_ns, ev.kind);
            }
            self.trace_scratch.clear();
        }
        frame.meta.clear_per_hop();
        if self.cfg.account_traffic {
            // Classification reuses the frame's cached parse when present
            // (and primes it for the receiving host otherwise).
            let class = match frame.parsed() {
                Ok(p) => TrafficClass::of_parsed(&p),
                Err(_) => TrafficClass::Other,
            };
            self.accounting.record_classified(class, frame.wire_len());
        }

        let binding = self.topo.node(node).ports[port as usize];
        let link = self.topo.link(binding.link);
        // Which direction of the (bidirectional) link this transmission
        // uses — keys the per-direction loss RNG stream.
        let from_a = link.a.0 == node;
        let rate = match egress_rate {
            Some(r) => r.min(link.params.bandwidth_bps),
            None => link.params.bandwidth_bps,
        };
        let tx = SimDuration::transmission(frame.wire_len(), rate);
        let arrive_at = self.now + tx + link.params.delay;

        // The port spends the serialization time regardless of faults, so
        // queues behind a dead link drain at line rate instead of wedging.
        self.events.push(self.now + tx, Event::TxDone { node, port });

        let fault_drop = if let Some(f) = &mut self.faults {
            if !f.node_is_up(node) {
                // A failed switch drains its queues into the void.
                Some(DropReason::SwitchDown)
            } else if !f.link_is_up(binding.link) {
                Some(DropReason::LinkDown)
            } else if f.roll_loss(binding.link, from_a) {
                Some(DropReason::LinkLoss)
            } else {
                None
            }
        } else {
            None
        };
        if let Some(reason) = fault_drop {
            match reason {
                DropReason::SwitchDown => self.stats.drops_switch_down += 1,
                DropReason::LinkDown => self.stats.drops_link_down += 1,
                _ => self.stats.drops_link_loss += 1,
            }
            self.note_drop(node, port, reason);
            self.pool.recycle(frame);
            return;
        }

        // In a partitioned run, a frame bound for a foreign node crosses
        // the domain boundary through the outbox instead of the local
        // event queue; the barrier exchange re-schedules it remotely.
        if let Some(d) = &mut self.domain {
            if d.of[binding.peer.0 as usize] != d.id {
                d.outbox.push(CrossMsg {
                    at: arrive_at,
                    sent_at: self.now,
                    node: binding.peer,
                    port: binding.peer_port,
                    src_domain: d.id,
                    seq: d.seq,
                    frame,
                });
                d.seq += 1;
                return;
            }
        }
        self.events.push(
            arrive_at,
            Event::Arrive { node: binding.peer, port: binding.peer_port, frame },
        );
    }

    fn deliver_to_host(&mut self, node: NodeId, mut frame: Box<Frame>) {
        // The frame is owned locally, so app callbacks can borrow the
        // payload straight out of its buffer — no copies on delivery. Every
        // exit recycles the frame into the pool.
        let Ok(parsed) = frame.parsed() else {
            self.drop_at_host(node);
            self.pool.recycle(frame);
            return;
        };
        let Some(ip) = parsed.ip else {
            self.drop_at_host(node);
            self.pool.recycle(frame);
            return;
        };
        let host_ip = match &self.nodes[node.0 as usize] {
            NodeState::Host(h) => h.ip,
            _ => unreachable!("deliver_to_host on a switch"),
        };
        if ip.dst != host_ip {
            self.drop_at_host(node);
            self.pool.recycle(frame);
            return;
        }

        match parsed.l4 {
            Some(L4View::Udp(udp)) => {
                let app_idx = match &self.nodes[node.0 as usize] {
                    NodeState::Host(h) => h
                        .udp_bindings
                        .iter()
                        .rev()
                        .find(|(p, _)| *p == udp.dst_port)
                        .map(|(_, i)| *i),
                    _ => unreachable!(),
                };
                let Some(app_idx) = app_idx else {
                    self.drop_at_host(node);
                    self.pool.recycle(frame);
                    return;
                };
                self.stats.frames_delivered += 1;
                self.metrics
                    .counter_inc("sim.frames_delivered", Labels::one("node", node.0 as u64));
                let payload = parsed.payload(&frame.bytes);
                let (src, sport, dport) = (ip.src, udp.src_port, udp.dst_port);
                self.invoke_app(node, app_idx, move |app, ctx| {
                    app.on_udp(ctx, src, sport, dport, payload)
                });
                self.pool.recycle(frame);
            }
            Some(L4View::Tcp(tcp)) => {
                self.stats.frames_delivered += 1;
                self.metrics
                    .counter_inc("sim.frames_delivered", Labels::one("node", node.0 as u64));
                let now = self.now;
                if let NodeState::Host(h) = &mut self.nodes[node.0 as usize] {
                    h.tcp.on_segment(now, ip.src, &tcp, parsed.payload(&frame.bytes));
                }
                self.flush_tcp(node);
                self.pool.recycle(frame);
            }
            None => {
                // Parsed as IP but no usable L4 — host drop.
                self.drop_at_host(node);
                self.pool.recycle(frame);
            }
        }
    }

    // ------------------------------------------------------ app plumbing

    /// Run one app callback, then apply its ops and flush TCP.
    fn invoke_app<F>(&mut self, node: NodeId, app_idx: usize, f: F)
    where
        F: FnOnce(&mut dyn App, &mut AppCtx<'_>),
    {
        let now = self.now;
        // Scratch buffer reuse; the freelist depth tracks callback
        // re-entrancy, which is shallow (delivery → TCP event → app).
        let mut ops = self.ops_free.pop().unwrap_or_default();
        {
            let NodeState::Host(h) = &mut self.nodes[node.0 as usize] else {
                panic!("app callback on non-host {node}");
            };
            let HostState { apps, rng, tcp, ip, .. } = h;
            if let Some(app) = apps.get_mut(app_idx) {
                let mut ctx = AppCtx {
                    now,
                    node,
                    node_ip: *ip,
                    rng,
                    ops: &mut ops,
                    next_conn: &mut tcp.next_conn,
                };
                f(app.as_mut(), &mut ctx);
            }
        }
        self.apply_ops(node, app_idx, &mut ops);
        self.flush_tcp(node);
        ops.clear();
        self.ops_free.push(ops);
    }

    fn apply_ops(&mut self, node: NodeId, app_idx: usize, ops: &mut Vec<AppOp>) {
        let now = self.now;
        for op in ops.drain(..) {
            match op {
                AppOp::BindUdp { port } => {
                    if let NodeState::Host(h) = &mut self.nodes[node.0 as usize] {
                        h.udp_bindings.push((port, app_idx));
                    }
                }
                AppOp::SendUdp { src_port, dst, dst_port, payload } => {
                    self.send_udp_from(node, src_port, dst, dst_port, &payload);
                }
                AppOp::SetTimer { delay, timer_id } => {
                    self.events.push(now + delay, Event::AppTimer { node, app_idx, timer_id });
                }
                AppOp::TcpListen { port } => {
                    if let NodeState::Host(h) = &mut self.nodes[node.0 as usize] {
                        h.tcp.listen(port);
                        h.listener_owner.push((port, app_idx));
                    }
                }
                AppOp::TcpConnect { conn, dst, dst_port } => {
                    if let NodeState::Host(h) = &mut self.nodes[node.0 as usize] {
                        h.conn_owner.insert(conn, app_idx);
                        h.tcp.connect(conn, dst, dst_port, now);
                    }
                }
                AppOp::TcpSend { conn, data } => {
                    if let NodeState::Host(h) = &mut self.nodes[node.0 as usize] {
                        h.tcp.send(conn, &data, now);
                    }
                }
                AppOp::TcpClose { conn } => {
                    if let NodeState::Host(h) = &mut self.nodes[node.0 as usize] {
                        h.tcp.close(conn, now);
                    }
                }
            }
        }
    }

    /// Send a UDP datagram from a host onto the wire.
    fn send_udp_from(
        &mut self,
        node: NodeId,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) {
        let src_ip = match &self.nodes[node.0 as usize] {
            NodeState::Host(h) => h.ip,
            _ => unreachable!(),
        };
        let dst_node = Topology::node_of_ip(dst).unwrap_or(NodeId(u32::MAX));
        let mut builder = PacketBuilder::between(node.0, src_ip, dst_node.0, dst);
        builder.ip_id = (self.next_trace_id & 0xFFFF) as u16;
        let mut frame = self.pool.take();
        builder.udp_into(src_port, dst_port, payload, &mut frame.bytes);
        frame.meta.trace_id = self.next_trace_id;
        self.next_trace_id += 1;
        let uplink = self.host_uplink(node, dst, 17, src_port, dst_port);
        self.enqueue(node, uplink, frame);
    }

    /// Egress port a host uses toward `dst` (port 0 unless multihomed with
    /// a better route). One memo read per packet; the table is filled at
    /// construction from the same `RouteTable` answers, but each entry is
    /// the full equal-cost *group*:
    ///
    /// * selection — [`EcmpSelect::Primary`] always takes the group head
    ///   (the old memoized answer); [`EcmpSelect::FlowHash`] hashes the
    ///   5-tuple across the group, same function the switches apply.
    /// * liveness — with a fault plan armed, a selected port whose link or
    ///   peer is down is skipped for the first live group member (the
    ///   bond-failover fix: the build-time memo used to pin traffic to a
    ///   dead port forever after a cable pull). When the whole group is
    ///   dead the selected port is kept — the fault drop paths account the
    ///   loss. Fault-free runs never take the liveness branch.
    fn host_uplink(&self, node: NodeId, dst: Ipv4Addr, proto: u8, sport: u16, dport: u16) -> PortId {
        let Some(dst_node) = Topology::node_of_ip(dst) else { return 0 };
        let Some(group) = self
            .host_uplinks
            .get(node.0 as usize)
            .and_then(|row| row.group(dst_node))
        else {
            return 0;
        };
        let selected = match self.cfg.ecmp {
            EcmpSelect::Primary => group[0],
            EcmpSelect::FlowHash => {
                let src_ip = match &self.nodes[node.0 as usize] {
                    NodeState::Host(h) => h.ip,
                    _ => return group[0],
                };
                let h = int_dataplane::flow_hash_tuple(src_ip, dst, proto, sport, dport);
                group[(h % group.len() as u64) as usize]
            }
        };
        if self.faults.is_some() && !self.port_is_live(node, selected) {
            if let Some(&live) = group.iter().find(|&&p| self.port_is_live(node, p)) {
                return live;
            }
        }
        selected
    }

    /// Whether a port's attached link and peer are currently up. Always
    /// true without a fault plan.
    fn port_is_live(&self, node: NodeId, port: PortId) -> bool {
        let Some(f) = &self.faults else { return true };
        match self.topo.node(node).ports.get(port as usize) {
            Some(pb) => f.link_is_up(pb.link) && f.node_is_up(pb.peer),
            None => false,
        }
    }

    /// Memoized *primary* egress port a host uses toward `dst` — the value
    /// the send path consults under the default [`EcmpSelect::Primary`]
    /// with no faults armed. Exposed for regression tests pinning the memo
    /// against fresh `RouteTable` answers.
    pub fn host_uplink_port(&self, node: NodeId, dst: Ipv4Addr) -> PortId {
        Topology::node_of_ip(dst)
            .and_then(|d| self.host_uplinks.get(node.0 as usize)?.group(d))
            .map_or(0, |g| g[0])
    }

    /// The full equal-cost uplink group (primary first) a host holds
    /// toward `dst` — the multipath route state behind
    /// [`Simulator::host_uplink_port`].
    pub fn host_uplink_group(&self, node: NodeId, dst: Ipv4Addr) -> &[PortId] {
        Topology::node_of_ip(dst)
            .and_then(|d| self.host_uplinks.get(node.0 as usize)?.group(d))
            .unwrap_or(&[])
    }

    /// Drain the TCP outboxes of a host until quiescent.
    fn flush_tcp(&mut self, node: NodeId) {
        loop {
            let (segments, timers, tcp_events) = {
                let NodeState::Host(h) = &mut self.nodes[node.0 as usize] else { return };
                (h.tcp.take_segments(), h.tcp.take_timer_requests(), h.tcp.take_events())
            };
            if segments.is_empty() && timers.is_empty() && tcp_events.is_empty() {
                return;
            }

            for seg in segments {
                self.send_tcp_segment(node, seg.dst_ip, seg.header, &seg.payload);
            }
            for t in timers {
                self.events.push(
                    t.deadline,
                    Event::TcpTimer { node, conn: t.conn, generation: t.generation },
                );
            }
            for ev in tcp_events {
                let conn = match &ev {
                    crate::tcp::TcpEvent::Connected { conn }
                    | crate::tcp::TcpEvent::Data { conn, .. }
                    | crate::tcp::TcpEvent::Closed { conn } => *conn,
                    crate::tcp::TcpEvent::Accepted { conn, local_port, .. } => {
                        // Assign ownership to the app listening on the port.
                        if let NodeState::Host(h) = &mut self.nodes[node.0 as usize] {
                            let owner = h
                                .listener_owner
                                .iter()
                                .rev()
                                .find(|(p, _)| p == local_port)
                                .map(|(_, i)| *i)
                                .unwrap_or(0);
                            h.conn_owner.insert(*conn, owner);
                        }
                        *conn
                    }
                };
                let owner = match &self.nodes[node.0 as usize] {
                    NodeState::Host(h) => h.conn_owner.get(&conn).copied(),
                    _ => None,
                };
                if let Some(app_idx) = owner {
                    self.invoke_app(node, app_idx, move |app, ctx| app.on_tcp(ctx, ev));
                }
            }
        }
    }

    fn send_tcp_segment(
        &mut self,
        node: NodeId,
        dst: Ipv4Addr,
        header: TcpHeader,
        payload: &[u8],
    ) {
        let src_ip = match &self.nodes[node.0 as usize] {
            NodeState::Host(h) => h.ip,
            _ => unreachable!(),
        };
        let dst_node = Topology::node_of_ip(dst).unwrap_or(NodeId(u32::MAX));
        let mut builder = PacketBuilder::between(node.0, src_ip, dst_node.0, dst);
        builder.ip_id = (self.next_trace_id & 0xFFFF) as u16;
        let (sport, dport) = (header.src_port, header.dst_port);
        let mut frame = self.pool.take();
        builder.tcp_into(header, payload, &mut frame.bytes);
        frame.meta.trace_id = self.next_trace_id;
        self.next_trace_id += 1;
        let uplink = self.host_uplink(node, dst, 6, sport, dport);
        self.enqueue(node, uplink, frame);
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::App;
    use crate::tcp::TcpEvent;
    use crate::topology::LinkParams;
    use int_packet::{ProbePayload, PROBE_UDP_PORT};
    use int_packet::wire::{WireDecode, WireEncode};
    use std::any::Any;

    /// h1 — s1 — h2 with paper-default links.
    fn line_topo() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        t.add_link(h1, s1, LinkParams::paper_default());
        t.add_link(s1, h2, LinkParams::paper_default());
        (t, h1, s1, h2)
    }

    fn cfg() -> SimConfig {
        SimConfig { switch_egress_rate_bps: None, ..SimConfig::default() }
    }

    // ---- tiny test apps ----

    /// Sends one UDP datagram at start; records nothing.
    struct UdpSender {
        dst: Ipv4Addr,
        payload: Vec<u8>,
    }
    impl App for UdpSender {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.send_udp(5000, self.dst, 5001, self.payload.clone());
        }
        fn as_any(&self) -> &dyn Any { self }
        fn as_any_mut(&mut self) -> &mut dyn Any { self }
    }

    /// Records every datagram arriving on port 5001 with its arrival time.
    #[derive(Default)]
    struct UdpSink {
        got: Vec<(SimTime, Vec<u8>)>,
    }
    impl App for UdpSink {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.bind_udp(5001);
        }
        fn on_udp(&mut self, ctx: &mut AppCtx<'_>, _f: Ipv4Addr, _fp: u16, _tp: u16, p: &[u8]) {
            self.got.push((ctx.now, p.to_vec()));
        }
        fn as_any(&self) -> &dyn Any { self }
        fn as_any_mut(&mut self) -> &mut dyn Any { self }
    }

    #[test]
    fn udp_end_to_end_latency() {
        let (t, h1, _s1, h2) = line_topo();
        let mut sim = Simulator::new(t, cfg());
        sim.install_app(h1, Box::new(UdpSender { dst: Topology::host_ip(h2), payload: vec![7; 100] }));
        let sink = sim.install_app(h2, Box::new(UdpSink::default()));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));

        let got = &sim.app::<UdpSink>(h2, sink).unwrap().got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, vec![7; 100]);
        // Two links at 10 ms + two serializations of 142 bytes at 20 Mbit/s
        // (56.8 µs each) ⇒ slightly over 20.11 ms.
        let ms = got[0].0.as_millis_f64();
        assert!((20.1..20.2).contains(&ms), "arrival at {ms} ms");
        assert_eq!(sim.stats().frames_forwarded, 1);
        assert_eq!(sim.stats().frames_delivered, 1);
    }

    /// Probe sender: emits one INT probe at start.
    struct OneProbe {
        dst: Ipv4Addr,
    }
    impl App for OneProbe {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            let p = ProbePayload::new(ctx.node.0, 1, ctx.now.as_nanos());
            ctx.send_udp(41000, self.dst, PROBE_UDP_PORT, p.to_bytes());
        }
        fn as_any(&self) -> &dyn Any { self }
        fn as_any_mut(&mut self) -> &mut dyn Any { self }
    }

    /// Probe sink: parses INT stacks arriving on the probe port.
    #[derive(Default)]
    struct ProbeSink {
        probes: Vec<ProbePayload>,
    }
    impl App for ProbeSink {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.bind_udp(PROBE_UDP_PORT);
        }
        fn on_udp(&mut self, _c: &mut AppCtx<'_>, _f: Ipv4Addr, _fp: u16, _tp: u16, p: &[u8]) {
            self.probes.push(ProbePayload::decode(&mut &p[..]).expect("valid probe"));
        }
        fn as_any(&self) -> &dyn Any { self }
        fn as_any_mut(&mut self) -> &mut dyn Any { self }
    }

    #[test]
    fn probe_collects_int_through_switch() {
        let (t, h1, s1, h2) = line_topo();
        let mut sim = Simulator::new(t, cfg());
        sim.install_app(h1, Box::new(OneProbe { dst: Topology::host_ip(h2) }));
        let sink = sim.install_app(h2, Box::new(ProbeSink::default()));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));

        let probes = &sim.app::<ProbeSink>(h2, sink).unwrap().probes;
        assert_eq!(probes.len(), 1);
        let p = &probes[0];
        assert_eq!(p.origin_node, h1.0);
        assert_eq!(p.int.hop_count(), 1, "one switch on the path");
        let rec = p.int.records[0];
        assert_eq!(rec.switch_id, s1.0);
        // Link latency = 10 ms propagation + 57.6 µs serialization of the
        // 144-byte probe at 20 Mbit/s.
        let ms = rec.link_latency_ns as f64 / 1e6;
        assert!((10.0..10.2).contains(&ms), "probe measured h1→s1 at {ms} ms");
    }

    /// Client that sends `len` bytes over TCP at start and records when the
    /// transfer completes (our FIN acked).
    struct TcpClient {
        dst: Ipv4Addr,
        len: usize,
        done_at: Option<SimTime>,
    }
    impl App for TcpClient {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            let conn = ctx.tcp_connect(self.dst, 7100);
            ctx.tcp_send(conn, vec![0xAB; self.len]);
            ctx.tcp_close(conn);
        }
        fn on_tcp(&mut self, ctx: &mut AppCtx<'_>, ev: TcpEvent) {
            if matches!(ev, TcpEvent::Closed { .. }) {
                self.done_at = Some(ctx.now);
            }
        }
        fn as_any(&self) -> &dyn Any { self }
        fn as_any_mut(&mut self) -> &mut dyn Any { self }
    }

    /// Server that counts received bytes per connection.
    #[derive(Default)]
    struct TcpServer {
        bytes: usize,
        eof_at: Option<SimTime>,
    }
    impl App for TcpServer {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.tcp_listen(7100);
        }
        fn on_tcp(&mut self, ctx: &mut AppCtx<'_>, ev: TcpEvent) {
            match ev {
                TcpEvent::Data { data, .. } => self.bytes += data.len(),
                TcpEvent::Closed { .. } => self.eof_at = Some(ctx.now),
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any { self }
        fn as_any_mut(&mut self) -> &mut dyn Any { self }
    }

    #[test]
    fn tcp_transfer_end_to_end() {
        let (t, h1, _s1, h2) = line_topo();
        let mut sim = Simulator::new(t, cfg());
        let len = 500_000;
        let client =
            sim.install_app(h1, Box::new(TcpClient { dst: Topology::host_ip(h2), len, done_at: None }));
        let server = sim.install_app(h2, Box::new(TcpServer::default()));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));

        let srv = sim.app::<TcpServer>(h2, server).unwrap();
        assert_eq!(srv.bytes, len, "every byte arrived exactly once");
        let eof = srv.eof_at.expect("server saw EOF");
        let done = sim.app::<TcpClient>(h1, client).unwrap().done_at.expect("client done");
        assert!(done >= eof, "client completion follows server EOF");

        // Sanity on throughput: 500 kB over a 20 Mbit/s path with 40 ms RTT
        // must land between the line-rate bound and a generous slack.
        let secs = eof.as_secs_f64();
        assert!(secs > 0.2, "can't beat line rate: {secs}");
        assert!(secs < 5.0, "transfer unreasonably slow: {secs}");
    }

    #[test]
    fn tcp_transfer_through_congested_bottleneck_still_completes() {
        // Two senders share s1→h2; drops occur; both streams stay intact.
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let h3 = t.add_host("h3");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        let params = LinkParams { queue_cap_pkts: 16, ..LinkParams::paper_default() };
        t.add_link(h1, s1, params);
        t.add_link(h3, s1, params);
        t.add_link(s1, h2, params);

        let mut sim = Simulator::new(t, cfg());
        let len = 300_000;
        sim.install_app(h1, Box::new(TcpClient { dst: Topology::host_ip(h2), len, done_at: None }));
        sim.install_app(h3, Box::new(TcpClient { dst: Topology::host_ip(h2), len, done_at: None }));
        let server = sim.install_app(h2, Box::new(TcpServer::default()));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));

        let srv = sim.app::<TcpServer>(h2, server).unwrap();
        assert_eq!(srv.bytes, 2 * len, "both streams delivered in full");
        assert!(sim.stats().drops_queue_full > 0, "bottleneck actually congested");
    }

    #[test]
    fn switch_egress_rate_ceiling_applies() {
        let (t, h1, _s1, h2) = line_topo();
        // Fast links, slow switch: the BMv2 model.
        let mut t2 = Topology::new();
        let g1 = t2.add_host("h1");
        let gs = t2.add_switch("s1");
        let g2 = t2.add_host("h2");
        let fast = LinkParams {
            bandwidth_bps: 1_000_000_000,
            delay: SimDuration::from_millis(10),
            queue_cap_pkts: 512,
        };
        t2.add_link(g1, gs, fast);
        t2.add_link(gs, g2, fast);

        let mk = |topo: Topology, ceiling| {
            let mut sim = Simulator::new(
                topo,
                SimConfig { switch_egress_rate_bps: ceiling, ..SimConfig::default() },
            );
            let len = 1_000_000;
            sim.install_app(NodeId(0), Box::new(TcpClient { dst: Topology::host_ip(NodeId(2)), len, done_at: None }));
            let server = sim.install_app(NodeId(2), Box::new(TcpServer::default()));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
            sim.app::<TcpServer>(NodeId(2), server).unwrap().eof_at.expect("done").as_secs_f64()
        };

        let _ = (t, h1, h2);
        let slow = mk(t2.clone(), Some(20_000_000));
        let fast_t = mk(t2, None);
        // 1 MB cannot beat the 20 Mbit/s line-rate bound of 0.4 s; without
        // the ceiling the transfer is limited only by slow start over RTT.
        assert!(slow > 0.4, "ceiling enforces the line-rate bound: {slow}");
        assert!(slow > 1.3 * fast_t, "ceiling visibly slower: {slow} vs {fast_t}");
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let (t, h1, _s1, h2) = line_topo();
            let mut sim = Simulator::new(t, SimConfig { seed, ..cfg() });
            sim.install_app(h1, Box::new(TcpClient { dst: Topology::host_ip(h2), len: 100_000, done_at: None }));
            let server = sim.install_app(h2, Box::new(TcpServer::default()));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
            (
                sim.app::<TcpServer>(h2, server).unwrap().eof_at,
                sim.stats(),
            )
        };
        assert_eq!(run(7), run(7));
    }

    /// Constant-bit-rate UDP source driven by a timer.
    struct CbrUdp {
        dst: Ipv4Addr,
        dst_port: u16,
        payload: usize,
        period: SimDuration,
        until: SimTime,
    }
    impl App for CbrUdp {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.set_timer(self.period, 1);
        }
        fn on_timer(&mut self, ctx: &mut AppCtx<'_>, _id: u64) {
            if ctx.now >= self.until {
                return;
            }
            ctx.send_udp(6000, self.dst, self.dst_port, vec![0xCB; self.payload]);
            ctx.set_timer(self.period, 1);
        }
        fn as_any(&self) -> &dyn Any { self }
        fn as_any_mut(&mut self) -> &mut dyn Any { self }
    }

    /// Determinism at experiment scale: a congested multi-host topology
    /// (two TCP streams and a CBR flow squeezed through a two-switch
    /// bottleneck with tiny queues, probes in flight) must replay an
    /// identical packet-level schedule for an identical seed — including
    /// every drop, every queue high-water mark, and every pool counter.
    #[test]
    fn congested_multi_host_replay_is_identical() {
        #[derive(Debug, PartialEq)]
        struct Fingerprint {
            stats: NetStats,
            server_bytes: usize,
            server_eof: Option<SimTime>,
            bottleneck: QueueStats,
            pool: PoolStats,
            probes: usize,
        }
        let run = |seed: u64| -> Fingerprint {
            let mut t = Topology::new();
            let h1 = t.add_host("h1");
            let h2 = t.add_host("h2");
            let s1 = t.add_switch("s1");
            let s2 = t.add_switch("s2");
            let h3 = t.add_host("h3");
            let h4 = t.add_host("h4");
            let tight = LinkParams { queue_cap_pkts: 8, ..LinkParams::paper_default() };
            t.add_link(h1, s1, tight);
            t.add_link(h2, s1, tight);
            t.add_link(s1, s2, tight); // the bottleneck
            t.add_link(s2, h3, tight);
            t.add_link(s2, h4, tight);

            let mut sim = Simulator::new(t, SimConfig { seed, ..SimConfig::default() });
            let h3_ip = Topology::host_ip(h3);
            sim.install_app(h1, Box::new(TcpClient { dst: h3_ip, len: 150_000, done_at: None }));
            sim.install_app(h2, Box::new(TcpClient { dst: h3_ip, len: 150_000, done_at: None }));
            let server = sim.install_app(h3, Box::new(TcpServer::default()));
            sim.install_app(
                h4,
                Box::new(CbrUdp {
                    dst: Topology::host_ip(h1),
                    dst_port: 5001,
                    payload: 1000,
                    period: SimDuration::from_millis(2),
                    until: SimTime::ZERO + SimDuration::from_secs(60),
                }),
            );
            sim.install_app(h1, Box::new(UdpSink::default()));
            sim.install_app(h1, Box::new(OneProbe { dst: h3_ip }));
            let probe_sink = sim.install_app(h3, Box::new(ProbeSink::default()));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));

            let srv = sim.app::<TcpServer>(h3, server).unwrap();
            Fingerprint {
                stats: sim.stats(),
                server_bytes: srv.bytes,
                server_eof: srv.eof_at,
                bottleneck: sim.queue_stats(s1, 2),
                pool: sim.pool_stats(),
                probes: sim.app::<ProbeSink>(h3, probe_sink).unwrap().probes.len(),
            }
        };

        let a = run(42);
        let b = run(42);
        assert!(a.stats.drops_queue_full > 0, "scenario actually congests: {:?}", a.stats);
        assert_eq!(a.server_bytes, 300_000, "both TCP streams complete");
        assert_eq!(a, b, "identical seeds must replay identically");
    }

    /// Wheel-vs-heap equivalence on a congested run (DESIGN.md §5.4): the
    /// event queue mirrors every push into a reference binary heap and
    /// asserts on every pop that the timing wheel produces the exact heap
    /// order. The scenario squeezes two TCP streams and a CBR flow through
    /// a tiny-queue bottleneck (retransmission timers, bursts, drops),
    /// adds a multi-second ticker (wheel overflow + idle jumps), and a
    /// fault plan with transitions 20 s and 40 s out (far-future events
    /// resident in overflow from t=0).
    #[test]
    fn wheel_pops_in_exact_heap_order_on_congested_run() {
        /// Rearming timer whose period dwarfs the L1 horizon (~4.29 s).
        struct SlowTicker {
            period: SimDuration,
            fires: u64,
        }
        impl App for SlowTicker {
            fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
                ctx.set_timer(self.period, 0);
            }
            fn on_timer(&mut self, ctx: &mut AppCtx<'_>, _id: u64) {
                self.fires += 1;
                ctx.set_timer(self.period, 0);
            }
            fn as_any(&self) -> &dyn Any { self }
            fn as_any_mut(&mut self) -> &mut dyn Any { self }
        }

        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let h2 = t.add_host("h2");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let h3 = t.add_host("h3");
        let h4 = t.add_host("h4");
        let tight = LinkParams { queue_cap_pkts: 8, ..LinkParams::paper_default() };
        t.add_link(h1, s1, tight);
        t.add_link(h2, s1, tight);
        t.add_link(s1, s2, tight); // the bottleneck
        t.add_link(s2, h3, tight);
        t.add_link(s2, h4, tight);

        let mut sim = Simulator::new(t, SimConfig { seed: 42, ..SimConfig::default() });
        sim.events.enable_cross_check();
        let h3_ip = Topology::host_ip(h3);
        sim.install_app(h1, Box::new(TcpClient { dst: h3_ip, len: 150_000, done_at: None }));
        sim.install_app(h2, Box::new(TcpClient { dst: h3_ip, len: 150_000, done_at: None }));
        let server = sim.install_app(h3, Box::new(TcpServer::default()));
        sim.install_app(
            h4,
            Box::new(CbrUdp {
                dst: Topology::host_ip(h1),
                dst_port: 5001,
                payload: 1000,
                period: SimDuration::from_millis(2),
                until: SimTime::ZERO + SimDuration::from_secs(60),
            }),
        );
        sim.install_app(h1, Box::new(UdpSink::default()));
        let ticker =
            sim.install_app(h2, Box::new(SlowTicker { period: SimDuration::from_secs(6), fires: 0 }));
        sim.install_fault_plan(
            &FaultPlan::new()
                .link_down(s2, h4, SimTime::ZERO + SimDuration::from_secs(20))
                .link_up(s2, h4, SimTime::ZERO + SimDuration::from_secs(40)),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));

        // The cross-check asserted wheel == heap on every single pop; now
        // pin that the run exercised what it claims to.
        let stats = sim.stats();
        assert!(stats.drops_queue_full > 0, "scenario actually congests: {stats:?}");
        assert!(stats.drops_link_down > 0, "fault plan actually fired: {stats:?}");
        assert_eq!(sim.app::<TcpServer>(h3, server).unwrap().bytes, 300_000);
        assert_eq!(
            sim.app::<SlowTicker>(h2, ticker).unwrap().fires,
            10,
            "overflow-resident timers fired on schedule (every 6 s up to and including t=60 s)"
        );
    }

    /// The frame pool reaches a steady state: once the in-flight
    /// population is established, a constant-rate flow allocates no new
    /// frames — every send is served from recycled buffers.
    #[test]
    fn pool_stops_allocating_at_steady_state() {
        let (t, h1, _s1, h2) = line_topo();
        let mut sim = Simulator::new(t, cfg());
        sim.install_app(
            h1,
            Box::new(CbrUdp {
                dst: Topology::host_ip(h2),
                dst_port: 5001,
                payload: 500,
                period: SimDuration::from_millis(1),
                until: SimTime::ZERO + SimDuration::from_secs(10),
            }),
        );
        sim.install_app(h2, Box::new(UdpSink::default()));

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let warm = sim.pool_stats();
        assert!(warm.takes > 1000, "flow is actually running: {warm:?}");

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let done = sim.pool_stats();
        assert!(done.takes > 2 * warm.takes, "flow kept running: {done:?}");
        assert_eq!(done.allocs, warm.allocs, "steady state allocates nothing new");
        assert!(
            done.recycles >= done.takes - done.allocs,
            "every non-fresh take was fed by a recycle: {done:?}"
        );
    }

    /// A 100 ms CBR flow across h1—s1—h2 with the h1–s1 link cut from
    /// t=2 s to t=4 s: deliveries stop during the outage (counted as
    /// link-down drops) and resume after recovery.
    #[test]
    fn link_down_blackholes_and_recovers() {
        let (t, h1, s1, h2) = line_topo();
        let mut sim = Simulator::new(t, cfg());
        sim.install_app(
            h1,
            Box::new(CbrUdp {
                dst: Topology::host_ip(h2),
                dst_port: 5001,
                payload: 100,
                period: SimDuration::from_millis(100),
                until: SimTime::ZERO + SimDuration::from_secs(6),
            }),
        );
        let sink = sim.install_app(h2, Box::new(UdpSink::default()));
        sim.install_fault_plan(
            &FaultPlan::new()
                .link_down(h1, s1, SimTime::ZERO + SimDuration::from_secs(2))
                .link_up(h1, s1, SimTime::ZERO + SimDuration::from_secs(4)),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(6));

        let stats = sim.stats();
        assert!(stats.drops_link_down >= 15, "outage visible: {stats:?}");
        let got = &sim.app::<UdpSink>(h2, sink).unwrap().got;
        let early = got.iter().filter(|(at, _)| at.as_secs_f64() < 2.0).count();
        let outage = got.iter().filter(|(at, _)| (2.1..4.0).contains(&at.as_secs_f64())).count();
        let late = got.iter().filter(|(at, _)| at.as_secs_f64() > 4.1).count();
        assert!(early >= 15, "pre-failure deliveries: {early}");
        assert_eq!(outage, 0, "nothing crosses a dead link");
        assert!(late >= 15, "deliveries resume after recovery: {late}");
    }

    /// Satellite-1 regression: a dual-homed host pinned its traffic to the
    /// build-time primary uplink even after that cable was pulled,
    /// blackholing everything despite a healthy equal-cost second uplink.
    /// Uplink choice must re-resolve against live fault state.
    #[test]
    fn dual_homed_host_fails_over_to_live_uplink_on_cable_pull() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let h2 = t.add_host("h2");
        t.add_link(h1, s1, LinkParams::paper_default());
        t.add_link(h1, s2, LinkParams::paper_default());
        t.add_link(s1, h2, LinkParams::paper_default());
        t.add_link(s2, h2, LinkParams::paper_default());
        let mut sim = Simulator::new(t, cfg());
        assert_eq!(
            sim.host_uplink_group(h1, Topology::host_ip(h2)).len(),
            2,
            "both uplinks are equal-cost members"
        );
        sim.install_app(
            h1,
            Box::new(CbrUdp {
                dst: Topology::host_ip(h2),
                dst_port: 5001,
                payload: 100,
                period: SimDuration::from_millis(100),
                until: SimTime::ZERO + SimDuration::from_secs(6),
            }),
        );
        let sink = sim.install_app(h2, Box::new(UdpSink::default()));
        sim.install_fault_plan(
            &FaultPlan::new()
                .link_down(h1, s1, SimTime::ZERO + SimDuration::from_secs(2))
                .link_up(h1, s1, SimTime::ZERO + SimDuration::from_secs(4)),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(6));

        let got = &sim.app::<UdpSink>(h2, sink).unwrap().got;
        let early = got.iter().filter(|(at, _)| at.as_secs_f64() < 2.0).count();
        let outage = got.iter().filter(|(at, _)| (2.1..4.0).contains(&at.as_secs_f64())).count();
        let late = got.iter().filter(|(at, _)| at.as_secs_f64() > 4.1).count();
        assert!(early >= 15, "pre-failure deliveries: {early}");
        assert!(outage >= 15, "failover keeps the flow alive through the outage: {outage}");
        assert!(late >= 15, "deliveries continue after recovery: {late}");
        // At most the frame in flight at the instant of the cut dies on
        // the downed link — the host must stop *selecting* it.
        assert!(sim.stats().drops_link_down <= 1, "{:?}", sim.stats());
    }

    /// With no second uplink the old blackholing behaviour is preserved —
    /// the failover experiments depend on single-homed hosts going dark.
    #[test]
    fn single_homed_host_still_blackholes_when_its_only_uplink_dies() {
        let (t, h1, s1, h2) = line_topo();
        let mut sim = Simulator::new(t, cfg());
        sim.install_app(
            h1,
            Box::new(CbrUdp {
                dst: Topology::host_ip(h2),
                dst_port: 5001,
                payload: 100,
                period: SimDuration::from_millis(100),
                until: SimTime::ZERO + SimDuration::from_secs(4),
            }),
        );
        let sink = sim.install_app(h2, Box::new(UdpSink::default()));
        sim.install_fault_plan(
            &FaultPlan::new().link_down(h1, s1, SimTime::ZERO + SimDuration::from_secs(2)),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(4));
        let got = &sim.app::<UdpSink>(h2, sink).unwrap().got;
        let outage = got.iter().filter(|(at, _)| at.as_secs_f64() > 2.1).count();
        assert_eq!(outage, 0, "no live member to fail over to");
        assert!(sim.stats().drops_link_down >= 15);
    }

    #[test]
    fn switch_fail_drops_everything_until_recovery() {
        let (t, h1, s1, h2) = line_topo();
        let mut sim = Simulator::new(t, cfg());
        sim.install_app(
            h1,
            Box::new(CbrUdp {
                dst: Topology::host_ip(h2),
                dst_port: 5001,
                payload: 100,
                period: SimDuration::from_millis(100),
                until: SimTime::ZERO + SimDuration::from_secs(6),
            }),
        );
        let sink = sim.install_app(h2, Box::new(UdpSink::default()));
        sim.install_fault_plan(
            &FaultPlan::new()
                .switch_fail(s1, SimTime::ZERO + SimDuration::from_secs(2))
                .switch_recover(s1, SimTime::ZERO + SimDuration::from_secs(4)),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(6));

        let stats = sim.stats();
        assert!(stats.drops_switch_down >= 15, "dead switch drops frames: {stats:?}");
        assert_eq!(stats.drops_link_down, 0, "attributed to the switch, not the link");
        let got = &sim.app::<UdpSink>(h2, sink).unwrap().got;
        let outage = got.iter().filter(|(at, _)| (2.1..4.0).contains(&at.as_secs_f64())).count();
        let late = got.iter().filter(|(at, _)| at.as_secs_f64() > 4.1).count();
        assert_eq!(outage, 0, "nothing traverses a failed switch");
        assert!(late >= 15, "forwarding resumes on recovery: {late}");
    }

    #[test]
    fn total_link_loss_drops_every_frame() {
        let (t, h1, s1, h2) = line_topo();
        let mut sim = Simulator::new(t, cfg());
        sim.install_app(
            h1,
            Box::new(CbrUdp {
                dst: Topology::host_ip(h2),
                dst_port: 5001,
                payload: 100,
                period: SimDuration::from_millis(100),
                until: SimTime::ZERO + SimDuration::from_secs(2),
            }),
        );
        let sink = sim.install_app(h2, Box::new(UdpSink::default()));
        sim.install_fault_plan(&FaultPlan::new().link_loss(h1, s1, 1.0));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));

        assert!(sim.stats().drops_link_loss >= 15, "{:?}", sim.stats());
        assert!(sim.app::<UdpSink>(h2, sink).unwrap().got.is_empty());
    }

    #[test]
    fn partial_loss_replays_identically_and_recycles_frames() {
        let run = |seed: u64| {
            let (t, h1, s1, h2) = line_topo();
            let mut sim = Simulator::new(t, SimConfig { seed, ..cfg() });
            sim.install_app(
                h1,
                Box::new(CbrUdp {
                    dst: Topology::host_ip(h2),
                    dst_port: 5001,
                    payload: 100,
                    period: SimDuration::from_millis(20),
                    until: SimTime::ZERO + SimDuration::from_secs(5),
                }),
            );
            let sink = sim.install_app(h2, Box::new(UdpSink::default()));
            sim.install_fault_plan(&FaultPlan::new().link_loss(h1, s1, 0.3));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(6));
            (sim.stats(), sim.pool_stats(), sim.app::<UdpSink>(h2, sink).unwrap().got.len())
        };
        let (stats, pool, delivered) = run(11);
        assert!(stats.drops_link_loss > 30, "loss actually biting: {stats:?}");
        assert!(delivered > 100, "most frames still get through: {delivered}");
        assert!(
            pool.recycles >= stats.drops_link_loss,
            "every lost frame went back to the pool: {pool:?} vs {stats:?}"
        );
        assert_eq!((stats, pool, delivered), run(11), "identical seeds replay identically");
    }

    /// Observability layer end-to-end: disabled by default (no series, no
    /// events), captures queue/drop/fault/harvest events once enabled, and
    /// renders byte-identical JSON for identical seeds.
    #[test]
    fn observability_is_off_by_default_and_deterministic_when_on() {
        use int_obs::TraceKind;

        let run = |instrument: bool| {
            let (t, h1, s1, h2) = line_topo();
            let mut sim = Simulator::new(t, cfg());
            if instrument {
                sim.metrics_mut().set_enabled(true);
                sim.set_tracing(true);
            }
            sim.install_app(
                h1,
                Box::new(CbrUdp {
                    dst: Topology::host_ip(h2),
                    dst_port: 5001,
                    payload: 100,
                    period: SimDuration::from_millis(100),
                    until: SimTime::ZERO + SimDuration::from_secs(3),
                }),
            );
            sim.install_app(h2, Box::new(UdpSink::default()));
            sim.install_app(h1, Box::new(OneProbe { dst: Topology::host_ip(h2) }));
            sim.install_app(h2, Box::new(ProbeSink::default()));
            sim.install_fault_plan(
                &FaultPlan::new()
                    .link_down(h1, s1, SimTime::ZERO + SimDuration::from_secs(1))
                    .link_up(h1, s1, SimTime::ZERO + SimDuration::from_secs(2)),
            );
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));
            sim
        };

        let dark = run(false);
        assert_eq!(dark.metrics().series(), 0, "disabled registry stays empty");
        assert_eq!(dark.trace_ring().seen(), 0, "disabled ring sees nothing");

        let lit = run(true);
        assert!(
            lit.metrics().counter("sim.frames_delivered", Labels::one("node", 2)) > 10,
            "deliveries counted per node"
        );
        assert!(
            lit.metrics().counter("sim.drops", Labels::one("node", 0)) > 0,
            "link-down drops counted at the transmitting node"
        );
        let kinds: Vec<&'static str> = lit.trace_ring().iter().map(|e| e.kind.label()).collect();
        for expected in ["enqueue", "dequeue", "drop", "fault", "probe_harvest", "register_reset"] {
            assert!(kinds.contains(&expected), "ring holds a {expected} event: {kinds:?}");
        }
        assert!(
            lit.trace_ring().iter().any(|e| matches!(
                e.kind,
                TraceKind::Fault { action: "link_down", subject: 0, peer: 1 }
            )),
            "fault event names the link endpoints"
        );

        // Same seed ⇒ byte-identical exports.
        let again = run(true);
        assert_eq!(lit.metrics().snapshot_json(), again.metrics().snapshot_json());
        assert_eq!(lit.trace_ring().to_json(), again.trace_ring().to_json());

        // Engine behaviour is identical with and without instrumentation.
        assert_eq!(dark.stats(), lit.stats(), "observability never perturbs the schedule");
    }

    #[test]
    fn misaddressed_udp_is_dropped_at_host() {
        let (t, h1, _s1, h2) = line_topo();
        let mut sim = Simulator::new(t, cfg());
        // No app bound on h2's port 5001.
        sim.install_app(h1, Box::new(UdpSender { dst: Topology::host_ip(h2), payload: vec![1] }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.stats().drops_host, 1);
        assert_eq!(sim.stats().frames_delivered, 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::app::App;
    use crate::topology::LinkParams;
    use std::any::Any;

    struct Beeper {
        beeps: u32,
    }
    impl App for Beeper {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(50), 1);
        }
        fn on_timer(&mut self, ctx: &mut AppCtx<'_>, _id: u64) {
            self.beeps += 1;
            ctx.set_timer(SimDuration::from_millis(50), 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn tiny() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let h2 = t.add_host("h2");
        t.add_link(h1, h2, LinkParams::paper_default());
        (t, h1, h2)
    }

    #[test]
    fn run_for_advances_relative_time() {
        let (t, h1, _h2) = tiny();
        let mut sim = Simulator::new(t, SimConfig::default());
        let idx = sim.install_app(h1, Box::new(Beeper { beeps: 0 }));
        sim.run_for(SimDuration::from_millis(500));
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.app::<Beeper>(h1, idx).unwrap().beeps, 20);
    }

    #[test]
    fn install_app_after_start_runs_on_start() {
        let (t, h1, _h2) = tiny();
        let mut sim = Simulator::new(t, SimConfig::default());
        sim.run_for(SimDuration::from_millis(100));
        let idx = sim.install_app(h1, Box::new(Beeper { beeps: 0 }));
        sim.run_for(SimDuration::from_millis(250));
        // Installed at t=100ms, timers at 150/200/250/300(in flight): ≥4 beeps.
        assert!(sim.app::<Beeper>(h1, idx).unwrap().beeps >= 4);
    }

    #[test]
    #[should_panic(expected = "cannot install an app on a switch")]
    fn installing_app_on_switch_panics() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        t.add_link(h1, s1, LinkParams::paper_default());
        let mut sim = Simulator::new(t, SimConfig::default());
        sim.install_app(s1, Box::new(Beeper { beeps: 0 }));
    }

    #[test]
    fn queue_and_register_accessors_work() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        t.add_link(h1, s1, LinkParams::paper_default());
        t.add_link(s1, h2, LinkParams::paper_default());
        let mut sim = Simulator::new(t, SimConfig::default());
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.queue_stats(s1, 1).enqueued, 0);
        let regs = sim.switch_registers(s1);
        assert!(regs.names().count() >= 3, "INT program registers declared");
    }

    #[test]
    #[should_panic(expected = "is not a switch")]
    fn host_registers_panic() {
        let (t, h1, _h2) = tiny();
        let sim = Simulator::new(t, SimConfig::default());
        let _ = sim.switch_registers(h1);
    }
}
