//! Application framework: the code that runs on simulated hosts.
//!
//! An [`App`] is a callback-driven state machine. The engine invokes it on
//! start, on UDP datagram arrival, on timers, and on TCP events. During a
//! callback the app issues side effects through [`AppCtx`]; the engine
//! executes them after the callback returns (so callbacks never re-enter
//! the engine).

use crate::event::ConnId;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
pub use crate::tcp::TcpEvent;
use rand::rngs::SmallRng;
use std::any::Any;
use std::net::Ipv4Addr;

/// Deferred side effects issued by an app during a callback.
#[derive(Debug)]
pub enum AppOp {
    /// Bind a UDP port to this app (datagrams to it are delivered here).
    BindUdp {
        /// Port to bind.
        port: u16,
    },
    /// Send a UDP datagram.
    SendUdp {
        /// Source port (needs no binding to send).
        src_port: u16,
        /// Destination address.
        dst: Ipv4Addr,
        /// Destination port.
        dst_port: u16,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// Arm a one-shot timer owned by this app.
    SetTimer {
        /// Fire after this delay.
        delay: SimDuration,
        /// App-chosen identifier passed back in `on_timer`.
        timer_id: u64,
    },
    /// Listen for TCP connections on a port (accepted conns belong to
    /// this app).
    TcpListen {
        /// Port to listen on.
        port: u16,
    },
    /// Open a TCP connection (the id was pre-allocated synchronously).
    TcpConnect {
        /// Pre-allocated connection id.
        conn: ConnId,
        /// Destination address.
        dst: Ipv4Addr,
        /// Destination port.
        dst_port: u16,
    },
    /// Queue bytes on a connection.
    TcpSend {
        /// Connection.
        conn: ConnId,
        /// Bytes to append to the stream.
        data: Vec<u8>,
    },
    /// Half-close a connection (FIN after the queued bytes).
    TcpClose {
        /// Connection.
        conn: ConnId,
    },
}

/// The capability handle an app uses during a callback.
pub struct AppCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Node the app runs on.
    pub node: NodeId,
    /// The node's IP address.
    pub node_ip: Ipv4Addr,
    /// Deterministic per-host RNG.
    pub rng: &'a mut SmallRng,
    pub(crate) ops: &'a mut Vec<AppOp>,
    pub(crate) next_conn: &'a mut ConnId,
}

impl AppCtx<'_> {
    /// Bind a UDP port to this app.
    pub fn bind_udp(&mut self, port: u16) {
        self.ops.push(AppOp::BindUdp { port });
    }

    /// Send a UDP datagram.
    pub fn send_udp(&mut self, src_port: u16, dst: Ipv4Addr, dst_port: u16, payload: Vec<u8>) {
        self.ops.push(AppOp::SendUdp { src_port, dst, dst_port, payload });
    }

    /// Arm a one-shot timer; `timer_id` comes back in `on_timer`.
    pub fn set_timer(&mut self, delay: SimDuration, timer_id: u64) {
        self.ops.push(AppOp::SetTimer { delay, timer_id });
    }

    /// Listen for TCP connections on `port`.
    pub fn tcp_listen(&mut self, port: u16) {
        self.ops.push(AppOp::TcpListen { port });
    }

    /// Open a TCP connection; returns its id immediately (events arrive
    /// later: `Connected`, then `Data`/`Closed`).
    pub fn tcp_connect(&mut self, dst: Ipv4Addr, dst_port: u16) -> ConnId {
        let conn = *self.next_conn;
        *self.next_conn += 1;
        self.ops.push(AppOp::TcpConnect { conn, dst, dst_port });
        conn
    }

    /// Queue bytes on a connection.
    pub fn tcp_send(&mut self, conn: ConnId, data: Vec<u8>) {
        self.ops.push(AppOp::TcpSend { conn, data });
    }

    /// Half-close a connection.
    pub fn tcp_close(&mut self, conn: ConnId) {
        self.ops.push(AppOp::TcpClose { conn });
    }
}

/// A simulated application.
pub trait App: Send {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut AppCtx<'_>);

    /// A UDP datagram arrived on a port this app bound.
    fn on_udp(
        &mut self,
        ctx: &mut AppCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        to_port: u16,
        payload: &[u8],
    ) {
        let _ = (ctx, from, from_port, to_port, payload);
    }

    /// A timer armed via [`AppCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, timer_id: u64) {
        let _ = (ctx, timer_id);
    }

    /// A TCP event on a connection this app owns.
    fn on_tcp(&mut self, ctx: &mut AppCtx<'_>, event: TcpEvent) {
        let _ = (ctx, event);
    }

    /// Downcast support for post-run inspection of app state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
