//! Simulation time: `u64` nanoseconds since the simulation epoch, wrapped in
//! newtypes so instants and durations cannot be confused and no floating
//! point enters the event engine.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (ns since epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time (ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as `f64` (stats/reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Millis since epoch as `f64` (stats/reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant; saturates to zero if `earlier`
    /// is actually later (clock misuse in callers shows up as zero, not
    /// a wrap-around of half the u64 range).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to whole ns). Panics on negative or
    /// non-finite input — those are configuration bugs.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds as `f64` (stats/reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as `f64` (stats/reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Serialization time of `bytes` at `bandwidth_bps`, rounded up to the
    /// next nanosecond so a busy link can never transmit at infinite speed.
    pub fn transmission(bytes: usize, bandwidth_bps: u64) -> SimDuration {
        assert!(bandwidth_bps > 0, "zero-bandwidth link");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bandwidth_bps as u128);
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_secs_f64(0.1), SimDuration::from_millis(100));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(10));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO, "saturating");
        assert_eq!(SimDuration::from_millis(10) * 3, SimDuration::from_millis(30));
        assert_eq!(SimDuration::from_millis(30) / 3, SimDuration::from_millis(10));
    }

    #[test]
    fn transmission_time_1500b_at_20mbps() {
        // 1500 bytes at 20 Mbit/s = 600 µs.
        let d = SimDuration::transmission(1500, 20_000_000);
        assert_eq!(d, SimDuration::from_micros(600));
    }

    #[test]
    fn transmission_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s, must round up.
        let d = SimDuration::transmission(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn transmission_zero_bytes_is_zero() {
        assert_eq!(SimDuration::transmission(0, 1_000_000), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn transmission_zero_bandwidth_panics() {
        let _ = SimDuration::transmission(1, 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_nanos(42).to_string(), "42ns");
    }
}
