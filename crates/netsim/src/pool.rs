//! Frame-buffer pooling for the DES hot path.
//!
//! Every simulated packet used to allocate a fresh `BytesMut` at the
//! sending host and free it at the receiving host (or at a drop point).
//! Under a saturating flow that is two allocator round-trips per simulated
//! packet — measurable against the engine's per-event work. The pool keeps
//! delivered and dropped frames on a freelist; the host send paths refill
//! them in place, so a steady-state simulation reaches zero frame
//! allocations after warm-up (the freelist high-water mark is the maximum
//! number of frames ever simultaneously in flight).
//!
//! Frames travel as `Box<Frame>` so recycling moves one pointer and the
//! event queue stays compact; the box itself is reused along with the byte
//! buffer inside it.

use int_dataplane::Frame;

/// Pool counters (diagnostics and steady-state tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Frames handed out by [`BufPool::take`].
    pub takes: u64,
    /// Frames returned via [`BufPool::recycle`].
    pub recycles: u64,
    /// Takes that had to allocate because the freelist was empty.
    pub allocs: u64,
}

/// A freelist of reusable frame boxes.
#[derive(Debug, Default)]
pub struct BufPool {
    // Boxes on purpose (not `Vec<Frame>`): frames circulate through the
    // event queue as `Box<Frame>`, and the pool recycles that exact box —
    // unboxing here would re-allocate it on every take.
    #[allow(clippy::vec_box)]
    free: Vec<Box<Frame>>,
    stats: PoolStats,
}

/// Freelist size cap: beyond this, recycled frames are freed instead of
/// kept. Bounds pool memory after a transient burst (e.g. a queue flushing
/// at simulation teardown) while comfortably covering steady-state flight.
const MAX_FREE: usize = 4096;

impl BufPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a frame box: recycled if available (reset, allocation kept),
    /// freshly allocated otherwise.
    pub fn take(&mut self) -> Box<Frame> {
        self.stats.takes += 1;
        match self.free.pop() {
            Some(mut f) => {
                f.reset_for_reuse();
                f
            }
            None => {
                self.stats.allocs += 1;
                Box::new(Frame::new(bytes::BytesMut::new()))
            }
        }
    }

    /// Return a spent frame to the freelist.
    pub fn recycle(&mut self, frame: Box<Frame>) {
        self.stats.recycles += 1;
        if self.free.len() < MAX_FREE {
            self.free.push(frame);
        }
    }

    /// Frames currently on the freelist.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_the_allocation() {
        let mut pool = BufPool::new();
        let mut f = pool.take();
        f.bytes.extend_from_slice(&[1, 2, 3]);
        f.meta.trace_id = 7;
        let cap = f.bytes.capacity();
        pool.recycle(f);

        let f2 = pool.take();
        assert!(f2.bytes.is_empty(), "recycled frame is reset");
        assert_eq!(f2.meta.trace_id, 0);
        assert!(f2.bytes.capacity() >= cap, "byte-buffer allocation survives recycling");

        let s = pool.stats();
        assert_eq!(s.takes, 2);
        assert_eq!(s.recycles, 1);
        assert_eq!(s.allocs, 1, "only the first take allocated");
    }

    #[test]
    fn freelist_is_bounded() {
        let mut pool = BufPool::new();
        let frames: Vec<_> = (0..MAX_FREE + 10).map(|_| pool.take()).collect();
        for f in frames {
            pool.recycle(f);
        }
        assert_eq!(pool.free_len(), MAX_FREE);
    }
}
