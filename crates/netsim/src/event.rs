//! The discrete-event core: a time-ordered queue with deterministic
//! tie-breaking (FIFO among same-time events via a monotone sequence
//! number), so identical seeds replay identical packet-level schedules.
//!
//! Internally the queue is a two-level hierarchical timing wheel with a
//! heap for far-future timers (see DESIGN.md §5.4). The wheel replaces the
//! original `BinaryHeap`-only implementation: a DES under load pops in
//! near-monotone time order, so most operations touch only the small
//! current-window buffer instead of sifting an O(log n) heap. Pop order is
//! *identical* to the heap's — total order on `(at, seq)` — which the
//! test-only shadow heap cross-check pins event by event.

use crate::fault::FaultAction;
use crate::time::SimTime;
use crate::topology::{NodeId, PortId};
use int_dataplane::Frame;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Connection identifier on a host (unique per host for its lifetime).
pub type ConnId = u64;

/// Everything that can happen in the simulated world.
///
/// Frames travel boxed: an `Event` is moved on every wheel placement and
/// heap sift, so the in-flight payload must stay a couple of words. The box
/// also lets the engine recycle frame buffers through its pool without
/// copying.
#[derive(Debug)]
pub enum Event {
    /// A frame finished propagating and arrives at `node` on `port`.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// Receiving port on that node.
        port: PortId,
        /// The frame itself (boxed to keep the event small).
        frame: Box<Frame>,
    },
    /// `node`'s `port` finished serializing its current frame; the port is
    /// free to start on the next queued frame.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// Transmitting port.
        port: PortId,
    },
    /// An application timer fired.
    AppTimer {
        /// Host the app runs on.
        node: NodeId,
        /// Which app on that host.
        app_idx: usize,
        /// App-chosen timer identifier.
        timer_id: u64,
    },
    /// A TCP retransmission timer fired.
    TcpTimer {
        /// Host owning the connection.
        node: NodeId,
        /// Connection.
        conn: ConnId,
        /// Timer generation: stale timers (generation mismatch) are ignored.
        generation: u64,
    },
    /// A scheduled fault transition (link down/up, switch fail/recover)
    /// from an installed [`FaultPlan`](crate::fault::FaultPlan) fires.
    Fault(FaultAction),
}

// Lock in the compact event layout: wheel placements and heap sifts move
// `Scheduled` by value, so a regression here (e.g. inlining `Frame` back
// into `Arrive`) is a silent slowdown of the hottest loop. 32 bytes =
// discriminant + the largest variant (`TcpTimer`: node + conn + generation).
const _: () = assert!(std::mem::size_of::<Event>() <= 32, "Event grew past two words per field");

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Shadow of a scheduled event for the wheel-vs-heap cross-check: the
/// original `BinaryHeap` ordering, minus the (non-cloneable) payload.
#[cfg(test)]
#[derive(PartialEq, Eq)]
struct ShadowKey {
    at: SimTime,
    seq: u64,
}

#[cfg(test)]
impl PartialOrd for ShadowKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
#[cfg(test)]
impl Ord for ShadowKey {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Slots per wheel level. 256 keeps the occupancy bitmap at four words and
/// the slot index a single byte mask.
const SLOTS: usize = 256;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// log2 of the L0 window width in ns: 2^16 ns ≈ 65.5 µs per window,
/// ≈ 16.8 ms L0 horizon. Sub-window order is resolved by the
/// current-window heap, so the width only trades heap size against
/// wheel hops; 65 µs comfortably covers a serialization burst.
const L0_SHIFT: u32 = 16;
/// log2 of the L1 slot width in ns: 2^24 ns ≈ 16.8 ms per slot (one L0
/// horizon), ≈ 4.29 s L1 horizon. Beyond that — TCP RTO backoff tails,
/// fault plans, long app timers — events wait in the overflow heap.
const L1_SHIFT: u32 = 24;

#[inline]
fn occ_set(occ: &mut [u64; 4], slot: usize) {
    occ[slot >> 6] |= 1u64 << (slot & 63);
}

#[inline]
fn occ_clear(occ: &mut [u64; 4], slot: usize) {
    occ[slot >> 6] &= !(1u64 << (slot & 63));
}

#[inline]
fn occ_test(occ: &[u64; 4], slot: usize) -> bool {
    occ[slot >> 6] & (1u64 << (slot & 63)) != 0
}

#[inline]
fn occ_empty(occ: &[u64; 4]) -> bool {
    occ.iter().all(|&w| w == 0)
}

/// Smallest cyclic distance `d` (1..=255) such that slot `(from + d) % 256`
/// is occupied. Masked word scan from `from + 1`: at most five word reads
/// regardless of occupancy (the fifth revisits the start word for the bits
/// below the starting position). Slot `from` itself is never occupied while
/// searching — the wheel files only strictly-ahead slots — so the wrapped
/// scan cannot produce a stale distance-256 hit.
fn next_occupied(occ: &[u64; 4], from: usize) -> Option<usize> {
    let start = (from + 1) & (SLOTS - 1);
    let first = start >> 6;
    let mut mask = !0u64 << (start & 63);
    for word in first..first + 5 {
        let bits = occ[word & 3] & mask;
        if bits != 0 {
            let slot = ((word & 3) << 6) + bits.trailing_zeros() as usize;
            return Some(((slot + SLOTS - 1 - from) & (SLOTS - 1)) + 1);
        }
        mask = !0;
    }
    None
}

/// Deterministic time-ordered event queue.
///
/// Hierarchical timing wheel: the current L0 window's events live in the
/// small `cur` min-heap, near-future windows hash into 256 L0 slots,
/// further events into 256 L1 slots, and everything past the L1 horizon
/// waits in an overflow heap. Each undrained slot holds events of exactly
/// one window/L1-slot value (the wheel advances before indices can alias),
/// so draining a slot never needs window disambiguation.
pub struct EventQueue {
    /// Current L0 window number: `cur` holds events with `at >> 16 <= win`.
    win: u64,
    /// Current-window events. A heap (earliest first via the inverted
    /// `Scheduled` ordering), not a sorted vec: when a burst lands in one
    /// window this degrades to exactly the original whole-queue heap
    /// instead of O(n) inserts, and in the common case it holds a handful
    /// of events and stays cache-local.
    cur: BinaryHeap<Scheduled>,
    /// L0 wheel: slot `w & 255` holds window `w`, `w - win` in 1..=255.
    l0: Box<[Vec<Scheduled>; SLOTS]>,
    occ0: [u64; 4],
    /// L1 wheel: slot `v & 255` holds L1 value `v = at >> 24`,
    /// `v - (win >> 8)` in 1..=255.
    l1: Box<[Vec<Scheduled>; SLOTS]>,
    occ1: [u64; 4],
    /// Events past the L1 horizon, ordered by the original heap discipline.
    overflow: BinaryHeap<Scheduled>,
    len: usize,
    next_seq: u64,
    /// When enabled, mirrors every push into the original binary-heap
    /// ordering and asserts on every pop that the wheel agrees — the
    /// wheel-vs-heap equivalence check from DESIGN.md §5.4.
    #[cfg(test)]
    shadow: Option<BinaryHeap<ShadowKey>>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            win: 0,
            cur: BinaryHeap::new(),
            l0: Box::new(std::array::from_fn(|_| Vec::new())),
            occ0: [0; 4],
            l1: Box::new(std::array::from_fn(|_| Vec::new())),
            occ1: [0; 4],
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
            #[cfg(test)]
            shadow: None,
        }
    }

    /// Mirror every subsequent push into a reference binary heap and assert
    /// on every pop that the wheel produces the exact heap order. Test-only
    /// (costs a heap op per push/pop). Enable on a fresh queue.
    #[cfg(test)]
    pub(crate) fn enable_cross_check(&mut self) {
        assert!(self.len == 0, "enable the cross-check before scheduling events");
        self.shadow = Some(BinaryHeap::new());
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        #[cfg(test)]
        if let Some(shadow) = &mut self.shadow {
            shadow.push(ShadowKey { at, seq });
        }
        self.len += 1;
        self.place(Scheduled { at, seq, event });
    }

    /// File one event into the level its distance from `win` selects.
    fn place(&mut self, s: Scheduled) {
        let w = s.at.0 >> L0_SHIFT;
        if w <= self.win {
            // Current window (or, permissively, the past).
            self.cur.push(s);
        } else if w - self.win < SLOTS as u64 {
            let slot = (w & SLOT_MASK) as usize;
            self.l0[slot].push(s);
            occ_set(&mut self.occ0, slot);
        } else {
            let v = s.at.0 >> L1_SHIFT;
            if v - (self.win >> 8) < SLOTS as u64 {
                let slot = (v & SLOT_MASK) as usize;
                self.l1[slot].push(s);
                occ_set(&mut self.occ1, slot);
            } else {
                self.overflow.push(s);
            }
        }
    }

    /// Advance the wheel until `cur` holds the next event. Caller
    /// guarantees `len > 0` and `cur` is empty.
    fn advance(&mut self) {
        loop {
            if !self.cur.is_empty() {
                return;
            }
            if occ_empty(&self.occ0) && occ_empty(&self.occ1) {
                // Everything pending is in overflow: jump straight to it.
                let top = self.overflow.peek().expect("len > 0 with empty wheels");
                self.win = top.at.0 >> L0_SHIFT;
            }
            // Promote overflow events that now fall under the L1 horizon.
            // Overflow times always exceed every wheel-resident time, so
            // promoting here (before picking a slot) preserves order.
            let vw = self.win >> 8;
            while let Some(top) = self.overflow.peek() {
                if (top.at.0 >> L1_SHIFT) - vw >= SLOTS as u64 {
                    break;
                }
                let s = self.overflow.pop().expect("peeked");
                self.place(s);
            }
            if !self.cur.is_empty() {
                return;
            }
            // Earliest candidate per level: an occupied L0 slot at window
            // `w0`, or an L1 slot whose first window is `b1`.
            let d0 = next_occupied(&self.occ0, (self.win & SLOT_MASK) as usize);
            let d1 = next_occupied(&self.occ1, (vw & SLOT_MASK) as usize);
            let w0 = d0.map(|d| self.win + d as u64);
            let b1 = d1.map(|d| (vw + d as u64) << (L1_SHIFT - L0_SHIFT));
            let take_l0 = match (w0, b1) {
                (Some(w0), Some(b1)) => w0 < b1,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("len > 0 but no event found in any level"),
            };
            if take_l0 {
                // The next event sits in the L0 wheel: jump to its window
                // and drain the slot into `cur`.
                let w0 = w0.expect("L0 chosen");
                self.win = w0;
                let slot = (w0 & SLOT_MASK) as usize;
                self.cur.extend(self.l0[slot].drain(..));
                occ_clear(&mut self.occ0, slot);
                return;
            }
            // The next event sits in the L1 wheel (or ties an L0 slot at
            // exactly `b1`): cascade the L1 slot across the L0 wheel,
            // merging the tied L0 slot if present.
            let b1 = b1.expect("L1 chosen");
            self.win = b1;
            let v = b1 >> (L1_SHIFT - L0_SHIFT);
            let slot = (v & SLOT_MASK) as usize;
            let mut moved = std::mem::take(&mut self.l1[slot]);
            occ_clear(&mut self.occ1, slot);
            for s in moved.drain(..) {
                let w = s.at.0 >> L0_SHIFT;
                debug_assert!(w >= b1 && w - b1 < SLOTS as u64);
                if w == self.win {
                    self.cur.push(s);
                } else {
                    let slot = (w & SLOT_MASK) as usize;
                    self.l0[slot].push(s);
                    occ_set(&mut self.occ0, slot);
                }
            }
            // An L0 slot indexed `b1 & 255` can only hold window `b1`
            // itself (the wheel never aliases): merge it.
            let slot = (self.win & SLOT_MASK) as usize;
            if occ_test(&self.occ0, slot) {
                debug_assert!(self.l0[slot].iter().all(|s| s.at.0 >> L0_SHIFT == self.win));
                self.cur.extend(self.l0[slot].drain(..));
                occ_clear(&mut self.occ0, slot);
            }
            // `cur` may still be empty (every event landed in a later L0
            // slot): loop and re-search from the new win.
        }
    }

    /// Pop the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            self.advance();
        }
        let s = self.cur.pop().expect("advance fills the current window");
        self.len -= 1;
        #[cfg(test)]
        if let Some(shadow) = &mut self.shadow {
            let k = shadow.pop().expect("shadow heap tracks len");
            assert!(
                (k.at, k.seq) == (s.at, s.seq),
                "wheel diverged from heap order: wheel popped (at={}, seq={}), heap (at={}, seq={})",
                s.at.0,
                s.seq,
                k.at.0,
                k.seq,
            );
        }
        Some((s.at, s.event))
    }

    /// Time of the next event without removing it. Takes `&mut self`
    /// because peeking may advance the wheel to locate the next window
    /// (order is unaffected).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            self.advance();
        }
        self.cur.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn timer(id: u64) -> Event {
        Event::AppTimer { node: NodeId(0), app_idx: 0, timer_id: id }
    }

    fn timer_id(ev: &Event) -> u64 {
        match ev {
            Event::AppTimer { timer_id, .. } => *timer_id,
            _ => panic!("not a timer"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer(3));
        q.push(SimTime(10), timer(1));
        q.push(SimTime(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| timer_id(&e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        for id in 0..100 {
            q.push(t, timer(id));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| timer_id(&e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_routes_through_overflow() {
        let mut q = EventQueue::new();
        q.enable_cross_check();
        // Spread across every level: current window, L0, L1, overflow
        // (the L1 horizon is 2^32 ns ≈ 4.29 s).
        let times = [
            0u64,
            1,
            1 << L0_SHIFT,
            (1 << L1_SHIFT) + 3,
            1_000_000_000,
            (1 << 32) + 17,
            10_000_000_000,
            300_000_000_000,
        ];
        for (id, &t) in times.iter().enumerate() {
            q.push(SimTime(t), timer(id as u64));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| timer_id(&e)).collect();
        assert_eq!(order, (0..times.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_promotes_in_order_after_wheel_drains() {
        let mut q = EventQueue::new();
        q.enable_cross_check();
        // Two far-future bursts beyond the L1 horizon, pushed before a
        // near event; FIFO ties inside each burst.
        for id in 0..10 {
            q.push(SimTime(8_000_000_000), timer(100 + id));
        }
        for id in 0..10 {
            q.push(SimTime(5_000_000_000), timer(id));
        }
        q.push(SimTime(5), timer(50));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| timer_id(&e)).collect();
        let mut expect = vec![50];
        expect.extend(0..10);
        expect.extend(100..110);
        assert_eq!(order, expect);
    }

    #[test]
    fn cascade_at_level_boundaries() {
        let mut q = EventQueue::new();
        q.enable_cross_check();
        // Times straddling window and slot edges, pushed shuffled.
        let mut times: Vec<u64> = Vec::new();
        for base in [1u64 << L0_SHIFT, 1 << L1_SHIFT, 1 << 32, 255 << L0_SHIFT, 256 << L0_SHIFT] {
            times.extend([base - 1, base, base + 1]);
        }
        // Deterministic shuffle: stride through the list.
        for i in 0..times.len() {
            q.push(SimTime(times[(i * 7) % times.len()]), timer(i as u64));
        }
        let mut got: Vec<u64> = Vec::new();
        while let Some((at, _)) = q.pop() {
            got.push(at.0);
        }
        let mut expect = times.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.enable_cross_check();
        // Drain a window partially, then push events at the already-open
        // window time and beyond — like an engine handler scheduling a
        // zero-delay follow-up while dispatching.
        q.push(SimTime(100), timer(0));
        q.push(SimTime(200), timer(1));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime(100));
        q.push(SimTime(100), timer(2)); // same time as the popped event
        q.push(SimTime(150), timer(3));
        q.push(SimTime(90_000_000), timer(4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| timer_id(&e)).collect();
        assert_eq!(order, vec![2, 3, 1, 4]);
    }

    proptest! {
        /// The wheel agrees with the shadow binary heap under random
        /// interleavings of pushes and pops across all level horizons
        /// (`ops` mixes deltas clustered near zero with multi-second and
        /// past-horizon jumps; `pop_every` interleaves drains).
        #[test]
        fn random_schedule_matches_reference_heap(
            ops in proptest::collection::vec((0u64..1u64 << 34, 0u8..4), 1..120),
            pop_every in 1usize..5,
        ) {
            let mut q = EventQueue::new();
            q.enable_cross_check();
            let mut clock = 0u64; // mimic the engine: never schedule in the past
            let mut pushed = 0u64;
            let mut popped = 0usize;
            for (i, &(raw, scale)) in ops.iter().enumerate() {
                // Scale the raw delta so small windows, L0, L1, and
                // overflow all see traffic.
                let delta = match scale {
                    0 => raw & 0xFFF,            // within a window
                    1 => raw & 0xFF_FFFF,        // L0/L1 range
                    2 => raw & 0xF_FFFF_FFFF,    // up to ~64 s: overflow
                    _ => 0,                      // exact ties
                };
                q.push(SimTime(clock + delta), timer(pushed));
                pushed += 1;
                if i % pop_every == 0 {
                    if let Some((at, _)) = q.pop() {
                        popped += 1;
                        // The cross-check asserts order; track time too.
                        prop_assert!(at.0 >= clock || clock == 0 || at.0 <= clock);
                        clock = clock.max(at.0);
                    }
                }
            }
            let mut last = clock;
            while let Some((at, _)) = q.pop() {
                popped += 1;
                prop_assert!(at.0 >= last || popped == 1);
                last = at.0;
            }
            prop_assert_eq!(popped as u64, pushed);
            prop_assert!(q.is_empty());
        }
    }
}
