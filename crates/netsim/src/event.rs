//! The discrete-event core: a time-ordered queue with deterministic
//! tie-breaking (FIFO among same-time events via a monotone sequence
//! number), so identical seeds replay identical packet-level schedules.

use crate::fault::FaultAction;
use crate::time::SimTime;
use crate::topology::{NodeId, PortId};
use int_dataplane::Frame;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Connection identifier on a host (unique per host for its lifetime).
pub type ConnId = u64;

/// Everything that can happen in the simulated world.
///
/// Frames travel boxed: an `Event` is copied on every sift of the binary
/// heap, so the in-flight payload must stay a couple of words. The box also
/// lets the engine recycle frame buffers through its pool without copying.
#[derive(Debug)]
pub enum Event {
    /// A frame finished propagating and arrives at `node` on `port`.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// Receiving port on that node.
        port: PortId,
        /// The frame itself (boxed to keep the event small).
        frame: Box<Frame>,
    },
    /// `node`'s `port` finished serializing its current frame; the port is
    /// free to start on the next queued frame.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// Transmitting port.
        port: PortId,
    },
    /// An application timer fired.
    AppTimer {
        /// Host the app runs on.
        node: NodeId,
        /// Which app on that host.
        app_idx: usize,
        /// App-chosen timer identifier.
        timer_id: u64,
    },
    /// A TCP retransmission timer fired.
    TcpTimer {
        /// Host owning the connection.
        node: NodeId,
        /// Connection.
        conn: ConnId,
        /// Timer generation: stale timers (generation mismatch) are ignored.
        generation: u64,
    },
    /// A scheduled fault transition (link down/up, switch fail/recover)
    /// from an installed [`FaultPlan`](crate::fault::FaultPlan) fires.
    Fault(FaultAction),
}

// Lock in the compact event layout: heap sifts move `Scheduled` by value,
// so a regression here (e.g. inlining `Frame` back into `Arrive`) is a
// silent slowdown of the hottest loop. 32 bytes = discriminant + the
// largest variant (`TcpTimer`: node + conn + generation).
const _: () = assert!(std::mem::size_of::<Event>() <= 32, "Event grew past two words per field");

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pop the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer(id: u64) -> Event {
        Event::AppTimer { node: NodeId(0), app_idx: 0, timer_id: id }
    }

    fn timer_id(ev: &Event) -> u64 {
        match ev {
            Event::AppTimer { timer_id, .. } => *timer_id,
            _ => panic!("not a timer"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer(3));
        q.push(SimTime(10), timer(1));
        q.push(SimTime(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| timer_id(&e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        for id in 0..100 {
            q.push(t, timer(id));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| timer_id(&e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
