//! Distributed training (the paper's second motivating workload): each
//! "round" ships three model shards to three edge servers in parallel,
//! using bandwidth-based ranking — the scheduler picks the servers with
//! the most available path bandwidth (paper §III-D).
//!
//! ```text
//! cargo run --release --example distributed_training
//! ```

use int_edge_sched::experiments::runner::{run, ExperimentConfig};
use int_edge_sched::prelude::*;

fn main() {
    println!("distributed training: 10 rounds × 3 medium shards, bandwidth ranking\n");

    let mut cfg = ExperimentConfig::paper_default(11, Policy::IntBandwidth);
    cfg.workload.kind = JobKind::Distributed;
    cfg.workload.total_tasks = 30;
    cfg.workload.classes = vec![TaskClass::Medium];
    cfg.drain = SimDuration::from_secs(180);

    let res = run(&cfg);
    println!("completed {} shard transfers ({} incomplete)", res.outcomes.len(), res.incomplete);

    // Per-round fan-out report: a round is one job of three tasks.
    let mut by_job: std::collections::BTreeMap<u64, Vec<_>> = Default::default();
    for o in &res.outcomes {
        by_job.entry(o.job_id).or_default().push(o);
    }
    for (job, shards) in by_job.iter().take(5) {
        let servers: Vec<u32> = shards.iter().map(|o| o.server).collect();
        let slowest = shards.iter().map(|o| o.completion_ms).fold(0.0, f64::max);
        println!(
            "  round {job:>2}: shards → servers {servers:?}, round time {:.1} s",
            slowest / 1000.0
        );
    }

    let mean_transfer: f64 =
        res.outcomes.iter().map(|o| o.transfer_ms).sum::<f64>() / res.outcomes.len() as f64;
    println!("\nmean shard transfer time: {:.1} s", mean_transfer / 1000.0);

    // Every round used three distinct servers (top-3 of the ranking).
    for shards in by_job.values() {
        let distinct: std::collections::BTreeSet<u32> = shards.iter().map(|o| o.server).collect();
        assert_eq!(distinct.len(), shards.len(), "shards fanned out to distinct servers");
    }
    println!("every round fanned out to three distinct servers ✓");
}
