//! Quickstart: build a three-host network, let INT probes map it, and ask
//! the scheduler for a ranked server list.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use int_edge_sched::prelude::*;
use int_edge_sched::core::rank::StaticDistances;

fn main() {
    // Topology: device and two servers behind one switch, scheduler on its
    // own access link. All links 10 ms / 20 Mbit/s-class.
    let mut topo = Topology::new();
    let device = topo.add_host("device");
    let server_a = topo.add_host("server-a");
    let server_b = topo.add_host("server-b");
    let scheduler = topo.add_host("scheduler");
    let sw = topo.add_switch("sw0");
    for h in [device, server_a, server_b, scheduler] {
        topo.add_link(h, sw, LinkParams::paper_default());
    }

    let mut sim = Simulator::new(topo, SimConfig::default());
    let scheduler_ip = Topology::host_ip(scheduler);

    // Every node probes the scheduler every 100 ms (paper §III-A).
    for h in [device, server_a, server_b] {
        sim.install_app(
            h,
            Box::new(ProbeSenderApp::new(scheduler_ip, ProbeSenderApp::DEFAULT_INTERVAL)),
        );
    }
    let sched_app = sim.install_app(
        scheduler,
        Box::new(SchedulerApp::new(
            scheduler.0,
            Policy::IntDelay,
            CoreConfig::default(),
            StaticDistances::new(),
            42,
        )),
    );

    // One second of probing is plenty to learn this network.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));

    let app = sim
        .app_mut::<SchedulerApp>(scheduler, sched_app)
        .expect("scheduler app");
    println!("probes received: {}", app.probes_received());

    let map = app.core().collector().map();
    println!("learned hosts:    {:?}", map.hosts().collect::<Vec<_>>());
    println!("learned switches: {:?}", map.switches().collect::<Vec<_>>());

    // Fig. 1 steps 3–4: rank candidate servers for the device. (In a live
    // network the query arrives over UDP — see examples/custom_topology.rs;
    // here we call the scheduler core directly.)
    let app = sim
        .app_mut::<SchedulerApp>(scheduler, sched_app)
        .expect("scheduler app");
    let ranking: Vec<RankedServer> =
        app.core_mut().rank_with(device.0, Policy::IntDelay, 1_000_000_000);
    println!("\nranked servers for the device (best first):");
    for r in &ranking {
        println!(
            "  host {:>2}  est delay {:>6.1} ms  est bandwidth {:>5.1} Mbit/s",
            r.host,
            r.est_delay_ns as f64 / 1e6,
            r.est_bandwidth_bps as f64 / 1e6,
        );
    }
    assert!(!ranking.is_empty(), "the scheduler learned at least one server");
}
