//! Bring-your-own topology: build a two-tier edge network with the public
//! API, write a custom application, and drive the full INT pipeline —
//! P4-programmed switches, probes, collector — without the bundled testbed.
//!
//! ```text
//! cargo run --example custom_topology
//! ```

use int_edge_sched::core::rank::StaticDistances;
use int_edge_sched::prelude::*;
use std::any::Any;
use std::net::Ipv4Addr;

/// A device app that fires one scheduler query and prints the response.
struct QueryOnce {
    scheduler: Ipv4Addr,
    answer: Option<Vec<(u32, u64)>>,
}

impl App for QueryOnce {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(int_edge_sched::packet::SCHED_CLIENT_UDP_PORT);
        // Let probes warm the map for two seconds first.
        ctx.set_timer(SimDuration::from_secs(2), 1);
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, _timer_id: u64) {
        use int_edge_sched::packet::msgs::{ControlMsg, RankingKind};
        use int_edge_sched::packet::wire::WireEncode;
        let req = ControlMsg::SchedRequest {
            requester: ctx.node.0,
            job_id: 1,
            task_count: 1,
            ranking: RankingKind::Delay,
        };
        ctx.send_udp(
            int_edge_sched::packet::SCHED_CLIENT_UDP_PORT,
            self.scheduler,
            SCHEDULER_UDP_PORT,
            req.to_bytes(),
        );
    }

    fn on_udp(&mut self, _c: &mut AppCtx<'_>, _f: Ipv4Addr, _fp: u16, _tp: u16, payload: &[u8]) {
        use int_edge_sched::packet::msgs::ControlMsg;
        use int_edge_sched::packet::wire::WireDecode;
        if let Ok(ControlMsg::SchedResponse { candidates, .. }) =
            ControlMsg::decode(&mut &payload[..])
        {
            self.answer = Some(candidates.iter().map(|c| (c.node, c.est_delay_ns)).collect());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    // Two-tier edge: an aggregation switch with two racks of servers.
    let mut topo = Topology::new();
    let device = topo.add_host("device");
    let agg = topo.add_switch("agg");
    let rack_a = topo.add_switch("rack-a");
    let rack_b = topo.add_switch("rack-b");
    let srv_a1 = topo.add_host("srv-a1");
    let srv_a2 = topo.add_host("srv-a2");
    let srv_b1 = topo.add_host("srv-b1");
    let scheduler = topo.add_host("scheduler");

    let fast = LinkParams::paper_default();
    topo.add_link(device, agg, fast);
    topo.add_link(scheduler, agg, fast);
    topo.add_link(agg, rack_a, fast);
    topo.add_link(agg, rack_b, fast);
    topo.add_link(srv_a1, rack_a, fast);
    topo.add_link(srv_a2, rack_a, fast);
    topo.add_link(srv_b1, rack_b, fast);

    let mut sim = Simulator::new(topo, SimConfig::default());
    let scheduler_ip = Topology::host_ip(scheduler);

    // Servers AND the device probe: the scheduler needs every endpoint in
    // its learned graph to estimate device→server paths.
    for node in [srv_a1, srv_a2, srv_b1, device] {
        sim.install_app(
            node,
            Box::new(ProbeSenderApp::new(scheduler_ip, ProbeSenderApp::DEFAULT_INTERVAL)),
        );
    }
    sim.install_app(
        scheduler,
        Box::new(SchedulerApp::new(
            scheduler.0,
            Policy::IntDelay,
            CoreConfig::default(),
            StaticDistances::new(),
            1,
        )),
    );
    let q = sim.install_app(device, Box::new(QueryOnce { scheduler: scheduler_ip, answer: None }));

    sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));

    let app = sim.app::<QueryOnce>(device, q).expect("query app");
    let answer = app.answer.as_ref().expect("scheduler answered over UDP");
    println!("scheduler's ranked answer for the device:");
    for (host, delay_ns) in answer {
        println!("  host {:>2}  est one-way delay {:>6.1} ms", host, *delay_ns as f64 / 1e6);
    }
    assert!(answer.len() >= 3, "all three probing servers are candidates");
    println!("\ncustom topology + custom app + real UDP query/response: done.");
}
