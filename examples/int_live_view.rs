//! Live view of the telemetry pipeline: start the paper's testbed, inject
//! one background flow, and watch the scheduler's learned network map —
//! which links it discovered, what congestion it sees, and how the probe
//! coverage report classifies every directed link.
//!
//! ```text
//! cargo run --release --example int_live_view
//! ```

use int_edge_sched::core::coverage::CoverageReport;
use int_edge_sched::experiments::testbed::{Testbed, TestbedConfig};
use int_edge_sched::prelude::*;
use int_edge_sched::apps::iperf::{IperfConfig, IperfSenderApp, IPERF_UDP_PORT};

fn main() {
    let mut tb = Testbed::new(&TestbedConfig::default());

    // One 18 Mbit/s background flow node1 → node3, active 3 s … 33 s.
    let src = tb.hosts[0];
    let dst = tb.hosts[2];
    tb.sim.install_app(
        src,
        Box::new(IperfSenderApp::new(IperfConfig::new(
            Topology::host_ip(dst),
            18_000_000,
            SimTime::ZERO + SimDuration::from_secs(3),
            SimDuration::from_secs(30),
        ))),
    );
    tb.sim.install_app(dst, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));

    for checkpoint_s in [1u64, 10, 40] {
        tb.sim.run_until(SimTime::ZERO + SimDuration::from_secs(checkpoint_s));
        let now_ns = tb.sim.now().as_nanos();
        let app = tb
            .sim
            .app::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
            .expect("scheduler app");
        let map = app.core().collector().map();

        println!("════ t = {checkpoint_s:>2} s ════");
        println!(
            "  {} hosts, {} switches, {} directed links learned, {} probes ingested",
            map.hosts().count(),
            map.switches().count(),
            map.edge_count(),
            app.probes_received(),
        );

        // Congested links as the scheduler sees them right now.
        let cfg = CoreConfig::default();
        let mut congested = 0;
        for (a, b, e) in map.edges() {
            let q = e.windowed_max_qlen(now_ns, cfg.qlen_window_ns);
            if q >= 3 {
                println!("  congested: {a:?} → {b:?}  maxQ={q} pkts  (k·Q = {} ms)",
                    q as u64 * cfg.k_ns_per_pkt / 1_000_000);
                congested += 1;
            }
        }
        if congested == 0 {
            println!("  no congestion visible");
        }

        // Probe coverage audit (paper assumes full coverage; check it).
        let report = CoverageReport::build(map, &cfg, now_ns);
        let (fresh, stale, reverse) = report.counts();
        println!(
            "  coverage: {fresh} fresh / {stale} stale / {reverse} reverse-only ({:.0}% fresh)\n",
            report.fresh_fraction() * 100.0
        );
    }

    println!("at t=10 s the background flow shows up on its bottleneck links;");
    println!("by t=40 s it has ended and the congestion signal has aged out.");
}
