//! Serverless offloading (the paper's FaaS motivation): an edge device
//! fires a stream of small function invocations; the INT-aware scheduler
//! steers each one around a roaming background flow while the Nearest
//! baseline keeps hammering its closest — sometimes congested — server.
//!
//! ```text
//! cargo run --release --example serverless_offload
//! ```

use int_edge_sched::experiments::runner::{install_background, run, ExperimentConfig};
use int_edge_sched::prelude::*;

fn main() {
    let mut total = [0.0f64; 2];
    println!("serverless offload: 40 very-small functions, roaming 18 Mbit/s background\n");

    for (i, policy) in [Policy::IntDelay, Policy::Nearest].into_iter().enumerate() {
        let mut cfg = ExperimentConfig::paper_default(7, policy);
        cfg.workload.kind = JobKind::Serverless;
        cfg.workload.total_tasks = 40;
        cfg.workload.classes = vec![TaskClass::VerySmall];
        cfg.workload.interarrival_ns = (1_000_000_000, 2_000_000_000);
        cfg.drain = SimDuration::from_secs(120);

        let res = run(&cfg);
        let mean: f64 =
            res.outcomes.iter().map(|o| o.completion_ms).sum::<f64>() / res.outcomes.len() as f64;
        total[i] = mean;

        println!("--- {policy:?} ---");
        println!(
            "completed {}/{} functions, mean completion {mean:.0} ms",
            res.outcomes.len(),
            res.outcomes.len() + res.incomplete,
        );
        // Show where the first few invocations landed.
        for o in res.outcomes.iter().take(6) {
            println!(
                "  fn #{:<2} device {} → server {}  ({:>6.0} ms)",
                o.job_id, o.submitter, o.server, o.completion_ms
            );
        }
        println!();
    }

    let gain = (total[1] - total[0]) / total[1] * 100.0;
    println!("INT-aware vs Nearest: {gain:+.1}% completion-time change");
    // `install_background` is public too — bring your own congestion:
    let _ = install_background;
}
