#!/usr/bin/env bash
# Repo CI gate. Run from the repository root.
#
#   tier 1  — release build + root-package tests (the seed contract)
#   tier 2  — full workspace tests
#   lints   — clippy, warnings are errors
#   benches — criterion harness in --test mode (one-iteration smoke, no
#             timing; catches bench bit-rot without the cost of a run)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + root tests"
cargo build --release
cargo test -q

echo "== tier 2: workspace tests"
cargo test --workspace --release -q

echo "== clippy (deny warnings)"
cargo clippy --workspace --release --all-targets -- -D warnings

echo "== benches (smoke)"
bench_log="$(cargo bench -p int-bench -- --test 2>&1)"
echo "$bench_log"
# The PR-4 hot-path benches must stay registered: the timing-wheel
# overflow variants and the indexed-vs-linear flow-table pair are the
# regression guards for results/bench_pr4.json. The PR-5 rank_throughput
# pair guards results/bench_pr5.json the same way.
# rank_throughput_mt (PR 6) guards results/bench_pr6.json: the sharded
# serve_batch path at 1/2/4/8 workers. rank_throughput_kpaths and
# fabric_build (PR 8) guard results/bench_pr8.json: k-path ranking cost
# vs the k=1 baseline, and the Clos control-plane build.
# sim_throughput/domains_{1,2,4} (PR 9) guard results/bench_pr9.json:
# the conservative parallel engine at each domain count (domains_1 is
# the plain-engine baseline the overhead is priced against).
# publish_throughput/clos_512s/{full,incremental} and
# ingest_throughput/clos_512s_960probes (PR 10) guard
# results/bench_pr10.json: the O(dirty) incremental epoch publish vs
# the full rebuild, and the dense edge-indexed batched probe drain.
for name in push_pop_far_1k timer_heavy_20s flow_table/lpm_indexed/512 flow_table/lpm_linear/512 \
            rank_throughput/testbed_8h rank_throughput/fabric_64s_128h \
            rank_throughput_mt/fabric_64s_128h/1 rank_throughput_mt/fabric_64s_128h/2 \
            rank_throughput_mt/fabric_64s_128h/4 rank_throughput_mt/fabric_64s_128h/8 \
            rank_throughput_kpaths/fabric_mp_128h/1 rank_throughput_kpaths/fabric_mp_128h/4 \
            fabric_build/clos_128s_240h \
            sim_throughput/domains_1 sim_throughput/domains_2 sim_throughput/domains_4 \
            publish_throughput/clos_512s/full publish_throughput/clos_512s/incremental \
            ingest_throughput/clos_512s_960probes; do
    grep -q "$name" <<<"$bench_log" \
        || { echo "bench smoke: $name missing from harness"; exit 1; }
done

echo "== failover (smoke)"
# Tiny grid, fixed seed, serial: the INT row must report a finite
# time-to-detect for the failed link (the baselines report null).
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
INT_RESULTS_DIR="$smoke_dir" INT_EXP_THREADS=1 \
    cargo run --release -q -p int-experiments --bin repro -- failover --seed 1 --scale 0.25
grep -A2 '"policy": "IntDelay"' "$smoke_dir/failover.json" \
    | grep -q '"detect_ms": [0-9]' \
    || { echo "failover smoke: no finite detect_ms for IntDelay"; exit 1; }

echo "== fabric ECMP determinism (smoke)"
# Flow-hash ECMP is a pure function of the 5-tuple and the cell grid is
# regrouped in input order, so the fabric artifact — multipath compare +
# cable-pull failover on a scaled Clos — must be byte-identical across
# worker counts. The multipath row must reroute; single-path never does.
fab1_dir="$(mktemp -d)"
fab4_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$fab1_dir" "$fab4_dir"' EXIT
INT_RESULTS_DIR="$fab1_dir" INT_EXP_THREADS=1 \
    cargo run --release -q -p int-experiments --bin repro -- fabric --seed 1 --scale 0.05
INT_RESULTS_DIR="$fab4_dir" INT_EXP_THREADS=4 \
    cargo run --release -q -p int-experiments --bin repro -- fabric --seed 1 --scale 0.05
cmp "$fab1_dir/fabric.json" "$fab4_dir/fabric.json" \
    || { echo "fabric smoke: INT_EXP_THREADS changed the artifact"; exit 1; }
grep -A3 '"mode": "multipath"' "$fab1_dir/fabric.json" \
    | grep -q '"reroute_ms": [0-9]' \
    || { echo "fabric smoke: multipath cell did not reroute"; exit 1; }
grep -A3 '"mode": "singlepath"' "$fab1_dir/fabric.json" \
    | grep -q '"reroute_ms": null' \
    || { echo "fabric smoke: singlepath cell unexpectedly rerouted"; exit 1; }

echo "== rank determinism (smoke)"
# The scheduler's path cache is pure memoization: the same cell with the
# cache force-disabled must produce a byte-identical artifact.
nocache_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$nocache_dir"' EXIT
INT_RESULTS_DIR="$nocache_dir" INT_EXP_THREADS=1 INT_PATH_CACHE=0 \
    cargo run --release -q -p int-experiments --bin repro -- failover --seed 1 --scale 0.25
cmp "$smoke_dir/failover.json" "$nocache_dir/failover.json" \
    || { echo "rank determinism smoke: path cache changed the artifact"; exit 1; }

echo "== sustained load (smoke)"
# The sharded control plane's determinism contract, end to end: the
# `repro sustained` artifact must be byte-identical with one read shard
# and with the default shard count (the digest covers every outcome, in
# admission order).
one_dir="$(mktemp -d)"
many_dir="$(mktemp -d)"
fullpub_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$nocache_dir" "$one_dir" "$many_dir" "$fullpub_dir"' EXIT
INT_RESULTS_DIR="$one_dir" INT_SCHED_SHARDS=1 \
    cargo run --release -q -p int-experiments --bin repro -- sustained --seed 1 --scale 0.05
INT_RESULTS_DIR="$many_dir" \
    cargo run --release -q -p int-experiments --bin repro -- sustained --seed 1 --scale 0.05
cmp "$one_dir/sustained.json" "$many_dir/sustained.json" \
    || { echo "sustained smoke: shard count changed the artifact"; exit 1; }
grep -q '"digest"' "$one_dir/sustained.json" \
    || { echo "sustained smoke: artifact has no digest"; exit 1; }
# Incremental epoch publication (PR 10) is a publish-cost strategy, not
# a semantics change: forcing every epoch down the full-rebuild path
# must reproduce the artifact byte-for-byte.
INT_RESULTS_DIR="$fullpub_dir" INT_SNAP_INCREMENTAL=0 \
    cargo run --release -q -p int-experiments --bin repro -- sustained --seed 1 --scale 0.05
cmp "$one_dir/sustained.json" "$fullpub_dir/sustained.json" \
    || { echo "sustained smoke: INT_SNAP_INCREMENTAL changed the artifact"; exit 1; }

echo "== shard stress (publish/read races)"
# One extra pass over the concurrency tests with the stress cfg: more
# churn rounds, more epochs in flight, same oracle equality.
RUSTFLAGS="--cfg shard_stress --check-cfg=cfg(shard_stress)" \
    cargo test --release -q --test shard_determinism

echo "== workflow (smoke)"
# Tiny deadline-aware DAG sweep: every composite-policy cell must be
# present with its task accounting and observability counters, and the
# artifact must be byte-identical across worker counts.
wf_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$nocache_dir" "$one_dir" "$many_dir" "$wf_dir"' EXIT
INT_RESULTS_DIR="$smoke_dir" INT_EXP_THREADS=1 \
    cargo run --release -q -p int-experiments --bin repro -- workflow --seed 1 --scale 0.25
INT_RESULTS_DIR="$wf_dir" INT_EXP_THREADS=4 \
    cargo run --release -q -p int-experiments --bin repro -- workflow --seed 1 --scale 0.25
cmp "$smoke_dir/workflow.json" "$wf_dir/workflow.json" \
    || { echo "workflow smoke: INT_EXP_THREADS changed the artifact"; exit 1; }
for key in '"policy": "NetworkOnly"' '"policy": "LeastLoaded"' '"policy": "IntLeastLoaded"' \
           '"policy": "IntEdf"' '"miss_rate"' '"queue_wait_mean_ms"' '"makespan_mean_s"' \
           '"tasks_dispatched"' '"sched_load_reports"'; do
    grep -q "$key" "$smoke_dir/workflow.json" \
        || { echo "workflow smoke: $key missing from artifact"; exit 1; }
done

echo "== audit export (smoke)"
# Tiny instrumented cell: the exported artifact and both embedded JSON
# documents (decision audit trail, metrics snapshot) must parse, and the
# IntDelay cell must name at least one ExcludeReason after the link cut.
INT_RESULTS_DIR="$smoke_dir" INT_EXP_THREADS=1 \
    cargo run --release -q -p int-experiments --bin repro -- audit --seed 1 --scale 0.5
python3 - "$smoke_dir/audit.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cells = doc["cells"]
assert cells, "no audit cells"
for c in cells:
    trail = json.loads(c["audit_json"])
    json.loads(c["metrics_json"])
    assert trail["total"] == c["decisions"], "trail total mismatch"
assert any(
    r["reason"] in ("NoFreshPath", "OriginSilent")
    for c in cells if c["policy"] == "IntDelay"
    for r in c["exclude_reasons"]
), "no ExcludeReason in the IntDelay cell after the link cut"
print("audit smoke OK: %d decisions audited" % sum(c["decisions"] for c in cells))
EOF

echo "== giant run: streaming + domain determinism (smoke)"
# Two contracts at once on a scaled-down giant Clos run:
#  - the streaming epoch writer is an I/O strategy, not a format — the
#    streamed (INT_OBS_STREAM=1) and in-core (=0) exports must be
#    byte-identical;
#  - the conservative parallel engine is invisible in the artifact —
#    INT_SIM_DOMAINS=4 must reproduce the single-domain giant.jsonl
#    byte-for-byte. (giant.json records the domain count and I/O mode,
#    so only the epoch export is compared.)
gs_dir="$(mktemp -d)"
gi_dir="$(mktemp -d)"
gd_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$nocache_dir" "$one_dir" "$many_dir" "$wf_dir" "$gs_dir" "$gi_dir" "$gd_dir"' EXIT
INT_RESULTS_DIR="$gs_dir" INT_OBS_STREAM=1 INT_SIM_DOMAINS=1 \
    cargo run --release -q -p int-experiments --bin repro -- giant --seed 1 --scale 0.02
# INT_SNAP_INCREMENTAL=0 rides along on this variant: the giant run's
# epoch export must be indifferent to the snapshot publisher's strategy.
INT_RESULTS_DIR="$gi_dir" INT_OBS_STREAM=0 INT_SIM_DOMAINS=1 INT_SNAP_INCREMENTAL=0 \
    cargo run --release -q -p int-experiments --bin repro -- giant --seed 1 --scale 0.02
cmp "$gs_dir/giant.jsonl" "$gi_dir/giant.jsonl" \
    || { echo "giant smoke: INT_OBS_STREAM changed the epoch export"; exit 1; }
INT_RESULTS_DIR="$gd_dir" INT_OBS_STREAM=1 INT_SIM_DOMAINS=4 \
    cargo run --release -q -p int-experiments --bin repro -- giant --seed 1 --scale 0.02
cmp "$gs_dir/giant.jsonl" "$gd_dir/giant.jsonl" \
    || { echo "giant smoke: INT_SIM_DOMAINS changed the epoch export"; exit 1; }
grep -q '"host_cores"' "$gs_dir/giant.runmeta.json" \
    || { echo "giant smoke: runmeta sidecar missing host_cores"; exit 1; }

echo "CI OK"
