#!/usr/bin/env bash
# Repo CI gate. Run from the repository root.
#
#   tier 1  — release build + root-package tests (the seed contract)
#   tier 2  — full workspace tests
#   lints   — clippy, warnings are errors
#   benches — criterion harness in --test mode (one-iteration smoke, no
#             timing; catches bench bit-rot without the cost of a run)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + root tests"
cargo build --release
cargo test -q

echo "== tier 2: workspace tests"
cargo test --workspace --release -q

echo "== clippy (deny warnings)"
cargo clippy --workspace --release --all-targets -- -D warnings

echo "== benches (smoke)"
cargo bench -p int-bench -- --test

echo "== failover (smoke)"
# Tiny grid, fixed seed, serial: the INT row must report a finite
# time-to-detect for the failed link (the baselines report null).
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
INT_RESULTS_DIR="$smoke_dir" INT_EXP_THREADS=1 \
    cargo run --release -q -p int-experiments --bin repro -- failover --seed 1 --scale 0.25
grep -A2 '"policy": "IntDelay"' "$smoke_dir/failover.json" \
    | grep -q '"detect_ms": [0-9]' \
    || { echo "failover smoke: no finite detect_ms for IntDelay"; exit 1; }

echo "CI OK"
