#!/usr/bin/env bash
# Repo CI gate. Run from the repository root.
#
#   tier 1  — release build + root-package tests (the seed contract)
#   tier 2  — full workspace tests
#   lints   — clippy, warnings are errors
#   benches — criterion harness in --test mode (one-iteration smoke, no
#             timing; catches bench bit-rot without the cost of a run)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + root tests"
cargo build --release
cargo test -q

echo "== tier 2: workspace tests"
cargo test --workspace --release -q

echo "== clippy (deny warnings)"
cargo clippy --workspace --release --all-targets -- -D warnings

echo "== benches (smoke)"
cargo bench -p int-bench -- --test

echo "CI OK"
