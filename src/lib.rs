//! # int-edge-sched
//!
//! A complete Rust implementation of **"INT Based Network-Aware Task
//! Scheduling for Edge Computing"** (Shrestha, Cziva, Arslan — IPDPSW
//! 2021): the scheduler itself, every substrate it needs (a P4-style
//! programmable data plane, a packet-level network simulator, byte-level
//! INT packet formats, workload generation), and the full experiment
//! harness that regenerates the paper's tables and figures.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`packet`] | `int-packet` | Ethernet/IPv4/UDP/TCP/Geneve/INT wire formats |
//! | [`dataplane`] | `int-dataplane` | P4-like pipelines, tables, registers, the INT program |
//! | [`netsim`] | `int-netsim` | discrete-event simulator: queues, links, TCP-Reno, apps |
//! | [`core`] | `int-core` | **the paper's contribution**: collector, map, estimators, rankers |
//! | [`apps`] | `int-apps` | probes, scheduler service, task submit/execute, iperf, ping |
//! | [`workload`] | `int-workload` | Table I task classes, job streams, congestion scenarios |
//! | [`experiments`] | `int-experiments` | per-figure reproduction harness (`repro` binary) |
//!
//! ## Quickstart
//!
//! ```
//! use int_edge_sched::prelude::*;
//!
//! // A probe from server 1 traversed switch 10, whose egress was congested.
//! let mut collector = IntCollector::new(6);
//! let mut probe = ProbePayload::new(1, 0, 0);
//! probe.int.push(IntRecord {
//!     switch_id: 10, ingress_port: 0, egress_port: 1,
//!     max_qlen_pkts: 25, qlen_at_probe_pkts: 20,
//!     link_latency_ns: 10_000_000, egress_ts_ns: 11_000_000,
//! });
//! collector.ingest(&probe, 21_000_000);
//!
//! // Estimating host 1 → scheduler crosses switch 10's congested egress.
//! let est = DelayEstimator::new(CoreConfig::default());
//! let d = est
//!     .estimate(collector.map(), NetNode::Host(1), NetNode::Host(6), 21_000_000)
//!     .expect("path learned from the probe");
//! assert_eq!(d.hop_delay_ns, 25 * 20_000_000, "k · maxQ visible in the estimate");
//! ```
//!
//! Run the paper's experiments with the bundled binary:
//!
//! ```text
//! cargo run --release -p int-experiments --bin repro -- all --scale 0.25
//! ```

pub use int_apps as apps;
pub use int_core as core;
pub use int_dataplane as dataplane;
pub use int_experiments as experiments;
pub use int_netsim as netsim;
pub use int_packet as packet;
pub use int_workload as workload;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use int_apps::{
        EchoResponderApp, IperfSenderApp, PingApp, ProbeSenderApp, SchedulerApp,
        TaskExecutorApp, TaskSubmitterApp, UdpSinkApp,
    };
    pub use int_core::{
        BandwidthEstimator, CoreConfig, DelayEstimator, IntCollector, NetNode, NetworkMap,
        Policy, RankedServer, SchedulerCore,
    };
    pub use int_dataplane::{
        DataPlaneProgram, Frame, IntProgramConfig, IntTelemetryProgram, L3ForwardProgram,
    };
    pub use int_netsim::{
        App, AppCtx, LinkParams, NodeId, SimConfig, SimDuration, SimTime, Simulator, TcpEvent,
        Topology,
    };
    pub use int_packet::int::IntRecord;
    pub use int_packet::{ProbePayload, PROBE_UDP_PORT, SCHEDULER_UDP_PORT, TASK_UDP_PORT};
    pub use int_workload::{
        BackgroundScenario, JobKind, JobSpec, TaskClass, TaskSpec, WorkloadConfig,
        WorkloadGenerator,
    };
}
