//! Offline drop-in subset of the `bytes` crate.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the minimal API surface it actually uses: [`BytesMut`] as a
//! growable byte buffer, [`Buf`] for cursor-style big-endian reads over
//! `&[u8]`, and [`BufMut`] for big-endian appends. Semantics match the real
//! crate for this subset (panics on under-read, like `bytes` itself).

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer (subset of `bytes::BytesMut`).
#[derive(Default, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Number of initialized bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes are present.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Shorten to `len` bytes (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Remove all bytes, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.inner {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { inner: src.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl PartialEq<[u8]> for BytesMut {
    fn eq(&self, other: &[u8]) -> bool {
        self.inner == other
    }
}

impl PartialEq<&[u8]> for BytesMut {
    fn eq(&self, other: &&[u8]) -> bool {
        self.inner == *other
    }
}

/// Cursor-style reads over a byte source (subset of `bytes::Buf`).
///
/// All multi-byte reads are big-endian, matching the real crate's
/// `get_u16`/`get_u32`/`get_u64`. Reads past the end panic, as in `bytes`;
/// decoders bound every read with an explicit length check first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Fill `dst` from the front of the source.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Big-endian appends to a byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEADBEEF);
        buf.put_u64(0x0102030405060708);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 0x0102030405060708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn from_slice_and_eq() {
        let b = BytesMut::from(&b"hello"[..]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.extend_from_slice(&[0u8; 40]);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
    }
}
