//! Offline drop-in subset of the `rand` crate (0.8 API surface).
//!
//! Provides a deterministic [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64) behind the same trait names the workspace imports:
//! [`Rng`], [`SeedableRng`], and [`seq::SliceRandom`]. The bit streams are
//! not identical to upstream `rand` 0.8 — all workspace consumers only rely
//! on seeded reproducibility, not on specific draws.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, expanding it to full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Named generators (subset: [`rngs::SmallRng`] behind the `small_rng`
/// feature name, always compiled here).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard seeding recipe for xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset: in-place shuffle).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation_and_reproducible() {
        let mut v1: Vec<u32> = (0..50).collect();
        let mut v2: Vec<u32> = (0..50).collect();
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        v1.shuffle(&mut a);
        v2.shuffle(&mut b);
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
