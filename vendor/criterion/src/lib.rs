//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `Throughput`, `BenchmarkId`, and the `criterion_group!`
//! / `criterion_main!` macros — with a simple median-of-samples timer
//! instead of upstream's full statistical machinery. Results are printed
//! one line per benchmark:
//!
//! ```text
//! bench: sim_throughput/cbr_5s_one_switch  median 61.21 ms/iter  (thrpt 130694 elem/s)
//! ```
//!
//! CLI: a bare positional argument filters benchmarks by substring and
//! `--test` runs each benchmark body exactly once (smoke mode), matching
//! `cargo bench -- --test`. `CRITERION_SAMPLES` overrides the sample count.

use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this stub's timer).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Median nanoseconds per iteration from the last `iter*` call.
    last_ns: f64,
}

impl Bencher {
    /// Time `routine`, storing the median ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm up and size the per-sample iteration count so one sample
        // costs ~25ms (bounded below by a single iteration).
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once_ns = warm.elapsed().as_nanos().max(1) as f64;
        let iters = ((25_000_000.0 / once_ns) as u64).clamp(1, 1_000_000);
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = per_iter[per_iter.len() / 2];
    }

    /// Time `routine` with a fresh `setup()` input per iteration; only the
    /// routine is inside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let input = setup();
        let warm = Instant::now();
        std::hint::black_box(routine(input));
        let once_ns = warm.elapsed().as_nanos().max(1) as f64;
        let iters = ((25_000_000.0 / once_ns) as u64).clamp(1, 1_000_000) as usize;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = per_iter[per_iter.len() / 2];
    }
}

/// Top-level harness state (subset of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(7);
        let mut c = Criterion { filter: None, test_mode: false, samples };
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => c.filter = Some(a.to_string()),
            }
        }
        c
    }
}

impl Criterion {
    fn should_run(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.should_run(name) {
            return;
        }
        let mut b = Bencher { test_mode: self.test_mode, samples: self.samples, last_ns: 0.0 };
        f(&mut b);
        if self.test_mode {
            println!("bench: {name}  ok (test mode)");
            return;
        }
        let ns = b.last_ns;
        let time = if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.2} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.2} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        };
        let thrpt = match throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  (thrpt {:.0} elem/s)", n as f64 * 1e9 / ns)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  (thrpt {:.2} MiB/s)", n as f64 * 1e9 / ns / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("bench: {name}  median {time}/iter{thrpt}  [{ns:.0} ns]");
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, None, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'c> BenchmarkGroup<'c> {
    /// Set the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the stub sizes samples internally.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub sizes measurement internally.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.c.run_one(&full, self.throughput, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.c.run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { test_mode: false, samples: 3, last_ns: 0.0 };
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.last_ns > 0.0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut count = 0;
        let mut b = Bencher { test_mode: true, samples: 3, last_ns: 0.0 };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("udp", 64).id, "udp/64");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
    }
}
