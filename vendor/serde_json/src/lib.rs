//! Offline drop-in subset of `serde_json` for the vendored serde stub.
//!
//! Implements the two entry points the workspace uses —
//! [`to_string_pretty`] and [`from_str`] — over the stub's
//! [`serde::Value`] tree. Output formatting matches upstream
//! `serde_json::to_string_pretty` (two-space indent, `": "` separators)
//! so committed result files stay diff-stable.

use serde::{de::DeserializeOwned, Serialize, Value};

/// Error for both serialization and parsing paths.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.serialize());
    Ok(out)
}

/// Parse a JSON document into `T`.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                indent(out, depth + 1);
                write_value(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json refuses non-finite floats; none occur in results, but
        // fail loud rather than emit invalid JSON.
        out.push_str("null");
        return;
    }
    // Match serde_json: floats always carry a decimal point or exponent.
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        out.push_str(&s);
    } else {
        out.push_str(&s);
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_shapes() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("probe \"x\"".into())),
            ("seed".into(), Value::U64(u64::MAX)),
            ("delta".into(), Value::I64(-42)),
            ("ratio".into(), Value::F64(0.25)),
            ("flags".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let text = {
            let mut s = String::new();
            write_value(&mut s, &v, 0);
            s
        };
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let back = p.value().expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn floats_always_have_a_point() {
        let mut s = String::new();
        write_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
    }

    #[test]
    fn u64_precision_survives() {
        let n: u64 = from_str("18446744073709551615").expect("max u64");
        assert_eq!(n, u64::MAX);
    }
}
