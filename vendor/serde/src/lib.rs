//! Offline drop-in subset of `serde`.
//!
//! Instead of upstream serde's visitor architecture, this stub serializes
//! through an owned [`Value`] tree (the subset of the JSON data model the
//! workspace needs). `serde_json` renders/parses that tree; `serde_derive`
//! generates `Serialize`/`Deserialize` impls with upstream-compatible shapes
//! (structs → objects in declaration order, newtypes transparent, enums
//! externally tagged), so the JSON written by this stub matches what real
//! serde+serde_json would emit for these types.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Numbers keep their original flavour (`U64`/`I64`/`F64`) so 64-bit seeds
/// and counters round-trip without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved (struct declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Deserialization error: a path-less message, enough for test diagnostics.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error describing an unexpected value shape.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {expected}, found {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Convert a value into the [`Value`] tree.
pub trait Serialize {
    /// Produce the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Rebuild a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `self` out of the tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// Marker for types deserializable without borrowing input (all types
    /// in this stub; blanket-implemented).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    ref other => return Err(DeError::unexpected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} too large")))?,
                    ref other => return Err(DeError::unexpected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(DeError::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::deserialize(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$(stringify!($t)),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::deserialize(&items[$n])?,)+))
                    }
                    other => Err(DeError::unexpected("tuple array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::unexpected("array", other)),
        }
    }
}

fn key_to_string(v: &Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        other => Err(DeError::unexpected("string-like map key", other)),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    // Try the string form first (unit-enum and String keys), then the
    // numeric re-interpretations serde_json uses for integer keys.
    let as_str = Value::Str(s.to_owned());
    if let Ok(k) = K::deserialize(&as_str) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(DeError(format!("cannot reconstruct map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.serialize())
                        .expect("map key must serialize to a string or integer");
                    (key, v.serialize())
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::deserialize(val)?)))
                .collect(),
            other => Err(DeError::unexpected("object", other)),
        }
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for std::net::Ipv4Addr {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                s.parse().map_err(|_| DeError(format!("invalid IPv4 address {s:?}")))
            }
            other => Err(DeError::unexpected("IPv4 address string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Support functions used by serde_derive-generated code (not public API)
// ---------------------------------------------------------------------------

/// Extract and deserialize a named struct field.
#[doc(hidden)]
pub fn __field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => T::deserialize(field)
            .map_err(|e| DeError(format!("{ty}.{name}: {}", e.0))),
        None => Err(DeError(format!("{ty}: missing field {name:?}"))),
    }
}

/// Split an externally-tagged enum object into (variant name, payload).
#[doc(hidden)]
pub fn __variant<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), DeError> {
    match v {
        Value::Object(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), &entries[0].1))
        }
        other => Err(DeError(format!(
            "{ty}: expected single-key variant object, found {other:?}"
        ))),
    }
}

/// Borrow a fixed-length array payload (tuple struct / tuple variant).
#[doc(hidden)]
pub fn __seq<'v>(v: &'v Value, ty: &str, n: usize) -> Result<&'v [Value], DeError> {
    match v {
        Value::Array(items) if items.len() == n => Ok(items),
        other => Err(DeError(format!("{ty}: expected {n}-element array, found {other:?}"))),
    }
}
