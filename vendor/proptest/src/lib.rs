//! Offline drop-in subset of `proptest`.
//!
//! Supports the API surface the workspace's property tests use: the
//! [`proptest!`] macro, [`any`], range strategies, tuple strategies,
//! [`collection::vec`]/[`collection::btree_set`], and `prop_map`. Cases are
//! generated from a deterministic per-test seed (derived from the test's
//! module path) so failures reproduce; there is no shrinking — the failing
//! input is printed instead via the panic message of the underlying
//! `assert!`. Case count defaults to 64, overridable with `PROPTEST_CASES`.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw a uniformly-distributed value over the whole domain.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy for the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Inclusive-lower / exclusive-upper bound on collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Collection strategies (subset: `vec` and `btree_set`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes in `size` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy (mirrors `proptest::collection::btree_set`).
    pub fn btree_set<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let target = rng.gen_range(self.size.lo..self.size.hi);
            let mut set = std::collections::BTreeSet::new();
            // Collisions shrink the set below target; bound the retries so a
            // small value domain cannot loop forever.
            for _ in 0..target.saturating_mul(20).max(32) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

/// Number of cases per property (default 64, `PROPTEST_CASES` overrides).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Driver used by the [`proptest!`] expansion: run `body` once per case
/// with a deterministic per-test, per-case generator.
pub fn run_cases(test_path: &str, mut body: impl FnMut(&mut SmallRng)) {
    // FNV-1a over the test path gives a stable per-test stream; the case
    // index perturbs it so every case sees fresh values.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    for case in 0..case_count() {
        let mut rng = SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15));
        body(&mut rng);
    }
}

/// Define property tests (subset of proptest's macro: `arg in strategy`
/// parameters only, which is all the workspace uses).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                    },
                );
            }
        )+
    };
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn maps_apply(s in any::<u16>().prop_map(|x| x as u64 + 1)) {
            prop_assert!(s >= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_cases("fixed::name", |rng| {
            first.push(crate::Strategy::generate(&(0u64..1000), rng));
        });
        let mut second = Vec::new();
        crate::run_cases("fixed::name", |rng| {
            second.push(crate::Strategy::generate(&(0u64..1000), rng));
        });
        assert_eq!(first, second);
        assert!(first.len() >= 2);
    }
}
