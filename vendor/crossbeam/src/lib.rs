//! Offline drop-in subset of the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope`/`Scope::spawn` are used by this
//! workspace; since Rust 1.63 the standard library provides scoped threads,
//! so this stub is a thin adapter over [`std::thread::scope`] that preserves
//! the crossbeam call shape (`scope(|s| …)` returning a `Result`, and spawn
//! closures receiving `&Scope` so they can nest spawns).

pub mod thread {
    /// Scope handle passed to [`scope`] closures and nested spawns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (Err on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// again, mirroring crossbeam's `spawn(|s| …)` signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope in which borrowing spawns are allowed; all
    /// spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam this cannot observe an unjoined child panic as an
    /// `Err` (std propagates it as a panic instead); every call site in the
    /// workspace joins explicitly, so the distinction never surfaces.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> =
                data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().expect("child")).sum()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().expect("inner") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(v, 42);
    }
}
