//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! Upstream serde_derive depends on `syn`/`quote`, which are unavailable in
//! this registry-less build environment. The workspace types use no
//! `#[serde(...)]` attributes and no generics, so a hand-rolled token walk
//! suffices: find the type name, enumerate fields/variants, and emit impls
//! of the stub's `Serialize`/`Deserialize` traits with upstream-compatible
//! JSON shapes (objects in declaration order, transparent newtypes,
//! externally-tagged enums).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derived type looks like.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Parsed) -> String) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen(&parsed).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error token"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes, visibility, and doc comments up to the keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // #[...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                return Err(format!("unexpected token {s:?} before struct/enum"));
            }
            other => return Err(format!("unexpected token {other:?} before struct/enum")),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("derive stub does not support generics on {name}"));
        }
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Shape::NamedStruct(named_field_names(&body)?)
            } else {
                Shape::Enum(variants(&body)?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind == "enum" {
                return Err(format!("malformed enum {name}"));
            }
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::TupleStruct(split_top_level(&body).len())
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
        None => Shape::UnitStruct,
        other => return Err(format!("unexpected body for {name}: {other:?}")),
    };

    Ok(Parsed { name, shape })
}

/// Split a token list at top-level commas (commas inside groups are already
/// hidden by the token tree; commas inside generic angle brackets are
/// tracked explicitly since `<`/`>` are plain puncts).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Skip `#[...]` attributes and `pub`/`pub(...)` at the head of a segment.
fn skip_attrs_and_vis(seg: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match seg.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = seg.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &seg[i..],
        }
    }
}

fn named_field_names(body: &[TokenTree]) -> Result<Vec<String>, String> {
    split_top_level(body)
        .iter()
        .map(|seg| {
            let seg = skip_attrs_and_vis(seg);
            match seg.first() {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

fn variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    split_top_level(body)
        .iter()
        .map(|seg| {
            let seg = skip_attrs_and_vis(seg);
            let name = match seg.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            let shape = match seg.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Tuple(split_top_level(&inner).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Named(named_field_names(&inner)?)
                }
                None => VariantShape::Unit,
                other => return Err(format!("unexpected token in variant {name}: {other:?}")),
            };
            Ok(Variant { name, shape })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::with_capacity({n}); {pushes} \
                 ::serde::Value::Object(__fields)",
                n = fields.len()
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::serialize(__f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Array(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Object(::std::vec![{pushes}]))]),",
                                pushes = pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] #[allow(unused_variables, clippy::all)] \
         impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__v, {name:?}, {f:?})?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::__seq(__v, {name:?}, {n})?; \
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(__payload)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __items = ::serde::__seq(\
                                 __payload, {path:?}, {n})?; \
                                 ::std::result::Result::Ok({name}::{vn}({items})) }}",
                                path = format!("{name}::{vn}"),
                                items = items.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let path = format!("{name}::{vn}");
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::__field(__payload, {path:?}, {f:?})?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {unit_arms} \
                     __other => ::std::result::Result::Err(::serde::DeError(\
                       ::std::format!(\"{name}: unknown variant {{:?}}\", __other))), \
                   }}, \
                   __obj => {{ \
                     let (__tag, __payload) = ::serde::__variant(__obj, {name:?})?; \
                     match __tag {{ \
                       {data_arms} \
                       __other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"{name}: unknown variant {{:?}}\", __other))), \
                     }} \
                   }} \
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived] #[allow(unused_variables, clippy::all)] \
         impl ::serde::Deserialize for {name} {{ \
         fn deserialize(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}
