//! Steady-state epoch **publication** and `k_paths > 1` snapshot serving
//! perform (next to) zero heap allocations.
//!
//! Companion to `alloc_rank.rs` (same counting-allocator pattern, its own
//! binary so the `#[global_allocator]` is scoped): that file pins the
//! single-path query paths; this one pins
//!
//! * multipath serving — after warm-up fills the per-scratch k-set cache,
//!   `rank_detailed_into` at `k_paths = 3` never touches the heap;
//! * the O(dirty) incremental publish loop — once the publisher holds two
//!   consecutive same-layout epochs and no reader pins the older one, a
//!   steady ingest→publish round recycles every per-epoch array and
//!   allocates exactly one `Arc` shell per published snapshot.
//!
//! Single test function on purpose: parallel tests would interleave their
//! allocations into the shared counter.

use int_edge_sched::core::rank::{RankOutcome, StaticDistances};
use int_edge_sched::core::shard::ShardedScheduler;
use int_edge_sched::core::snapshot::SnapshotScratch;
use int_edge_sched::core::{CoreConfig, Policy};
use int_edge_sched::packet::int::IntRecord;
use int_edge_sched::packet::ProbePayload;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counted(here: bool) -> bool {
    COUNTING.try_with(|c| c.replace(here)).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Host `h`'s probe through its leaf `10 + h` and one of two spines
/// (`20` or `21`) — two switch-disjoint routes per host, so `k_paths =
/// 3` genuinely resolves multipath k-sets.
fn probe(h: u32, spine: u32, seq: u64, qbase: u32, now_ns: u64) -> ProbePayload {
    let mut p = ProbePayload::new(h, seq, 0);
    for (i, sw) in [10 + h, spine].into_iter().enumerate() {
        p.int.push(IntRecord {
            switch_id: sw,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: qbase + h * 3,
            qlen_at_probe_pkts: (qbase + h * 3) / 2,
            link_latency_ns: 10_000_000,
            egress_ts_ns: now_ns.saturating_sub((1 - i as u64) * 50_000),
        });
    }
    p
}

#[test]
fn steady_state_publish_and_kpath_serving_allocate_nothing() {
    const ROUND_NS: u64 = 100_000_000;
    let cfg = CoreConfig { k_paths: 3, ..CoreConfig::default() };
    let mut sched = ShardedScheduler::new(100, cfg, StaticDistances::new(), 1, 1);

    // Warm-up: enough rounds that every queue history reaches its
    // retention-bounded steady length, the publisher's last full build
    // reserved slot headroom beyond it, and two consecutive epochs share
    // one slot layout (so the third begins recycling spare arrays).
    let warm_rounds = 32u64;
    let rounds = 200u64;
    let mk_round = |round: u64| -> (u64, Vec<ProbePayload>) {
        let now = (round + 1) * ROUND_NS;
        let probes = (0..8u32)
            .flat_map(|h| {
                [
                    probe(h, 20, round * 2 + 1, (round % 5) as u32, now),
                    probe(h, 21, round * 2 + 2, (round % 5) as u32, now),
                ]
            })
            .collect();
        (now, probes)
    };
    for round in 0..warm_rounds {
        let (now, probes) = mk_round(round);
        assert!(sched.ingest_batch(&probes, now), "every round publishes");
    }

    // Serving warm-up at k_paths = 3 against the live snapshot.
    let snap = sched.epoch_slot().current().expect("published");
    let mut scratch = SnapshotScratch::new();
    let mut detailed = RankOutcome::default();
    let warm_now = warm_rounds * ROUND_NS;
    for policy in [Policy::IntDelay, Policy::IntBandwidth] {
        snap.rank_detailed_into(&mut scratch, 100, policy, warm_now, 0, &mut detailed);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    counted(true);
    for q in 0..1_000u64 {
        let now = warm_now + q;
        snap.rank_detailed_into(&mut scratch, 100, Policy::IntDelay, now, q, &mut detailed);
        snap.rank_detailed_into(&mut scratch, 100, Policy::IntBandwidth, now, q, &mut detailed);
    }
    counted(false);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state k_paths > 1 snapshot queries must not touch the heap"
    );
    assert!(!detailed.ranked.is_empty());
    drop(snap); // release the reader pin so the publisher can recycle

    // Publish loop: probes are built outside the counted window (they
    // are the simulated network's traffic, not publisher work).
    let stats_before = sched.publish_stats();
    let batches: Vec<(u64, Vec<ProbePayload>)> =
        (warm_rounds..warm_rounds + rounds).map(mk_round).collect();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    counted(true);
    for (now, probes) in &batches {
        sched.ingest_batch(probes, *now);
    }
    counted(false);
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    let stats = sched.publish_stats();
    assert_eq!(
        stats.incremental_builds - stats_before.incremental_builds,
        rounds,
        "every steady-state publish takes the incremental path: {stats:?}"
    );
    assert_eq!(
        stats.full_builds, stats_before.full_builds,
        "no steady-state full rebuilds"
    );
    assert!(
        after - before <= rounds,
        "steady-state ingest+publish must allocate at most the snapshot \
         Arc shell per epoch: {} allocations over {} rounds",
        after - before,
        rounds
    );
}
