//! Cross-crate integration tests: the full pipeline from P4 switches
//! through probes, the collector, the scheduler service, and task
//! execution — on the paper's testbed topology.

use int_edge_sched::apps::iperf::{IperfConfig, IperfSenderApp, IPERF_UDP_PORT};
use int_edge_sched::core::coverage::CoverageReport;
use int_edge_sched::experiments::runner::{run, ExperimentConfig};
use int_edge_sched::experiments::testbed::{Testbed, TestbedConfig, ProbeMode};
use int_edge_sched::prelude::*;

fn run_secs(tb: &mut Testbed, s: u64) {
    tb.sim.run_until(SimTime::ZERO + SimDuration::from_secs(s));
}

#[test]
fn scheduler_learns_full_topology_with_all_pairs_probing() {
    let mut tb = Testbed::new(&TestbedConfig::default());
    run_secs(&mut tb, 3);
    let app = tb
        .sim
        .app::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
        .expect("scheduler app");
    let map = app.core().collector().map();
    assert_eq!(map.hosts().count(), 8, "all edge nodes discovered");
    assert_eq!(map.switches().count(), 12, "all ring switches discovered");

    // Coverage: with all-pairs probing a large majority of directed links
    // carry fresh same-direction measurements.
    let report = CoverageReport::build(map, &CoreConfig::default(), tb.sim.now().as_nanos());
    assert!(
        report.fresh_fraction() > 0.8,
        "fresh coverage {:.2}",
        report.fresh_fraction()
    );
}

#[test]
fn scheduler_only_probing_has_worse_coverage() {
    let coverage = |mode: ProbeMode| {
        let mut tb = Testbed::new(&TestbedConfig { probe_mode: mode, ..TestbedConfig::default() });
        run_secs(&mut tb, 3);
        let app = tb
            .sim
            .app::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
            .expect("scheduler app");
        let map = app.core().collector().map();
        CoverageReport::build(map, &CoreConfig::default(), tb.sim.now().as_nanos())
            .fresh_fraction()
    };
    let sched_only = coverage(ProbeMode::SchedulerOnly);
    let all_pairs = coverage(ProbeMode::AllPairs);
    assert!(
        all_pairs > sched_only + 0.2,
        "all-pairs {all_pairs:.2} must beat scheduler-only {sched_only:.2} clearly"
    );
}

#[test]
fn background_congestion_is_visible_in_the_learned_map() {
    let mut tb = Testbed::new(&TestbedConfig::default());
    // Saturating flow node1 → node3 from t=2s.
    let dst_ip = Topology::host_ip(tb.hosts[2]);
    tb.sim.install_app(
        tb.hosts[0],
        Box::new(IperfSenderApp::new(IperfConfig::new(
            dst_ip,
            19_000_000,
            SimTime::ZERO + SimDuration::from_secs(2),
            SimDuration::from_secs(30),
        ))),
    );
    tb.sim.install_app(tb.hosts[2], Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
    run_secs(&mut tb, 10);

    let now_ns = tb.sim.now().as_nanos();
    let app = tb
        .sim
        .app::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
        .expect("scheduler app");
    let map = app.core().collector().map();
    let cfg = CoreConfig::default();
    let max_seen = map
        .edges()
        .map(|(_, _, e)| e.windowed_max_qlen(now_ns, cfg.qlen_window_ns))
        .max()
        .unwrap_or(0);
    assert!(max_seen >= 3, "saturating flow visible in INT data: max qlen {max_seen}");
}

#[test]
fn congestion_shifts_the_delay_ranking() {
    // Queueing in this network builds at the egress where offered load
    // first exceeds the 20 Mbit/s ceiling. Two flows converging on node7
    // (12 Mbit/s each) overload the final egress toward node7's access
    // link, which sits on node8's path to node7 — so node8's delay
    // estimate for its nearest pair must inflate, and the ranking demote
    // it.
    let estimate_and_top = |congest: bool| {
        let mut tb = Testbed::new(&TestbedConfig::default());
        if congest {
            for src_idx in [0usize, 4] {
                let dst = Topology::host_ip(tb.hosts[6]);
                tb.sim.install_app(
                    tb.hosts[src_idx],
                    Box::new(IperfSenderApp::new(IperfConfig::new(
                        dst,
                        12_000_000,
                        SimTime::ZERO + SimDuration::from_secs(1),
                        SimDuration::from_secs(30),
                    ))),
                );
            }
            tb.sim.install_app(tb.hosts[6], Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
        }
        run_secs(&mut tb, 8);
        let now_ns = tb.sim.now().as_nanos();
        let requester = tb.hosts[7].0;
        let sched = tb.scheduler;
        let idx = tb.scheduler_app;
        let app = tb.sim.app_mut::<SchedulerApp>(sched, idx).expect("scheduler app");
        let ranked = app.core_mut().rank_with(requester, Policy::IntDelay, now_ns);
        let node7 = ranked.iter().find(|r| r.host == 6).expect("node7 ranked");
        (node7.est_delay_ns, ranked[0].host)
    };

    let (idle_est, idle_top) = estimate_and_top(false);
    assert_eq!(idle_top, 6, "idle network: nearest pair node7 wins");
    let (congested_est, congested_top) = estimate_and_top(true);
    assert!(
        congested_est > idle_est + 100_000_000,
        "converging congestion inflates node7's estimate: {} → {} ns",
        idle_est,
        congested_est
    );
    assert_ne!(congested_top, 6, "and demotes it from the top rank");
}

#[test]
fn int_policy_beats_random_and_tracks_nearest_on_a_small_run() {
    // Small but full-stack statistical check (the real figures use the
    // release-mode harness): pooled over classes, INT must beat Random
    // clearly and not lose badly to Nearest.
    let mean_of = |policy: Policy| {
        let mut cfg = ExperimentConfig::paper_default(3, policy);
        cfg.workload.total_tasks = 16;
        cfg.workload.classes = vec![TaskClass::VerySmall, TaskClass::Small];
        cfg.workload.interarrival_ns = (1_500_000_000, 3_000_000_000);
        cfg.drain = SimDuration::from_secs(120);
        let res = run(&cfg);
        assert!(res.outcomes.len() >= 14, "{policy:?} completed {}", res.outcomes.len());
        res.outcomes.iter().map(|o| o.completion_ms).sum::<f64>() / res.outcomes.len() as f64
    };
    let int_mean = mean_of(Policy::IntDelay);
    let random_mean = mean_of(Policy::Random);
    assert!(
        int_mean < random_mean,
        "INT ({int_mean:.0} ms) beats Random ({random_mean:.0} ms)"
    );
}

#[test]
fn executors_report_what_submitters_record() {
    let mut cfg = ExperimentConfig::paper_default(9, Policy::IntDelay);
    cfg.workload.total_tasks = 6;
    cfg.workload.classes = vec![TaskClass::VerySmall];
    cfg.drain = SimDuration::from_secs(90);
    let res = run(&cfg);
    assert_eq!(res.incomplete, 0);
    for o in &res.outcomes {
        assert!(o.transfer_ms > 0.0);
        assert!(o.completion_ms >= o.transfer_ms);
        assert_ne!(o.server, o.submitter, "no self-execution");
        assert!(o.data_bytes >= 1000, "VS tasks still move ≥1 KB");
    }
}
