//! Property-based tests on the simulator substrates: match-action tables
//! against a reference model, event ordering, register semantics, queue
//! conservation, and TCP stream integrity under arbitrary loss patterns.

use int_edge_sched::dataplane::{Key, MatchActionTable, MatchKind, RegisterArray};
use int_edge_sched::netsim::tcp::{TcpConfig, TcpHost};
use int_edge_sched::netsim::topology::{ClosParams, FatTreeParams, LinkParams};
use int_edge_sched::netsim::{DropTailQueue, EventQueue, NodeKind, RouteTable, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Reference LPM: scan all prefixes, pick the longest match.
fn reference_lpm(entries: &[([u8; 4], u16, u32)], key: [u8; 4]) -> Option<u32> {
    entries
        .iter()
        .filter(|(value, plen, _)| {
            let bits = u32::from_be_bytes(*value);
            let k = u32::from_be_bytes(key);
            let mask = if *plen == 0 { 0 } else { u32::MAX << (32 - *plen.min(&32)) };
            (bits & mask) == (k & mask)
        })
        .max_by_key(|(_, plen, _)| *plen)
        .map(|(_, _, action)| *action)
}

proptest! {
    /// The LPM table agrees with a brute-force reference on random
    /// prefix sets and lookups.
    #[test]
    fn lpm_matches_reference(
        entries in proptest::collection::vec((any::<[u8; 4]>(), 0u16..=32, any::<u32>()), 0..16),
        lookups in proptest::collection::vec(any::<[u8; 4]>(), 1..32),
    ) {
        // Dedup by (masked value, plen): the table has MODIFY semantics for
        // identical keys, the reference would keep both.
        let mut seen = std::collections::BTreeSet::new();
        let mut entries2 = Vec::new();
        for (v, plen, a) in entries {
            let bits = u32::from_be_bytes(v);
            let mask = if plen == 0 { 0 } else { u32::MAX << (32 - plen.min(32)) };
            if seen.insert((bits & mask, plen)) {
                entries2.push(((bits & mask).to_be_bytes(), plen, a));
            }
        }
        let mut table = MatchActionTable::new("fwd", MatchKind::Lpm);
        for (value, plen, action) in &entries2 {
            table.insert(Key::Lpm { value: value.to_vec(), prefix_len: *plen }, *action);
        }
        for key in lookups {
            let got = table.lookup(&key).copied();
            let want = reference_lpm(&entries2, key);
            // Equal-length overlaps are resolved identically because masked
            // values are unique per (value, plen).
            prop_assert_eq!(got, want, "key {:?}", key);
        }
    }

    /// The event queue dequeues in exact (time, insertion) order.
    #[test]
    fn event_queue_is_stable_priority_queue(times in proptest::collection::vec(any::<u32>(), 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(
                SimTime(t as u64),
                int_edge_sched::netsim::Event::AppTimer {
                    node: int_edge_sched::netsim::NodeId(0),
                    app_idx: 0,
                    timer_id: i as u64,
                },
            );
        }
        let mut expected: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(i, &t)| (t as u64, i as u64)).collect();
        expected.sort();
        let mut got = Vec::new();
        while let Some((at, ev)) = q.pop() {
            if let int_edge_sched::netsim::Event::AppTimer { timer_id, .. } = ev {
                got.push((at.as_nanos(), timer_id));
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// write_max is idempotent, commutative, and equals the running max.
    #[test]
    fn register_write_max_is_running_max(values in proptest::collection::vec(any::<u64>(), 1..64)) {
        let mut a = RegisterArray::new(1);
        for &v in &values {
            a.write_max(0, v);
        }
        prop_assert_eq!(a.read(0), *values.iter().max().unwrap());
        prop_assert_eq!(a.take(0), *values.iter().max().unwrap());
        prop_assert_eq!(a.read(0), 0);
    }

    /// Drop-tail conservation: enqueued = dequeued + still-queued + never
    /// more than capacity in the queue.
    #[test]
    fn queue_conserves_frames(ops in proptest::collection::vec(any::<bool>(), 1..256), cap in 1usize..32) {
        let mut q = DropTailQueue::new(cap);
        let mut dequeued = 0u64;
        for push in ops {
            if push {
                let frame = Box::new(int_edge_sched::dataplane::Frame::new(bytes::BytesMut::from(&[0u8; 10][..])));
                let was_full = q.depth_pkts() == cap;
                // A full queue hands the frame back instead of leaking it.
                prop_assert_eq!(q.enqueue(frame).is_some(), was_full);
            } else if q.dequeue().is_some() {
                dequeued += 1;
            }
            prop_assert!(q.depth_pkts() <= cap);
        }
        let s = q.stats();
        prop_assert_eq!(s.enqueued, dequeued + q.depth_pkts() as u64);
    }

    /// Clos generator invariants: node/link counts, strict bipartite tier
    /// wiring, all-pairs host connectivity, and tight hop-count bounds
    /// (2 links same-leaf, 4 links cross-leaf), for arbitrary shapes.
    #[test]
    fn clos_generator_invariants(
        spines in 1u32..6,
        leaves in 1u32..8,
        hosts_per_leaf in 1u32..4,
    ) {
        let p = ClosParams { spines, leaves, hosts_per_leaf, link: LinkParams::paper_default() };
        let f = p.build();
        prop_assert_eq!(f.hosts.len() as u32, leaves * hosts_per_leaf);
        prop_assert_eq!(f.tiers.len(), 2);
        prop_assert_eq!(f.tiers[0].len() as u32, leaves);
        prop_assert_eq!(f.tiers[1].len() as u32, spines);
        prop_assert_eq!(
            f.topo.links.len() as u32,
            leaves * hosts_per_leaf + leaves * spines,
            "host attachments plus the full bipartite mesh"
        );

        // Tier wiring is strictly bipartite: every link joins either a
        // host to a leaf or a leaf to a spine — never intra-tier.
        let tier_of = |n: int_edge_sched::netsim::NodeId| -> usize {
            if f.topo.node(n).kind == NodeKind::Host {
                0
            } else if f.tiers[0].contains(&n) {
                1
            } else {
                2
            }
        };
        for l in &f.topo.links {
            let (ta, tb) = (tier_of(l.a.0), tier_of(l.b.0));
            prop_assert_eq!(ta.abs_diff(tb), 1, "adjacent tiers only: {:?}", l.id);
        }
        // Every leaf reaches every spine exactly once.
        for &leaf in &f.tiers[0] {
            let up = f.topo.node(leaf).ports.iter()
                .filter(|pb| f.tiers[1].contains(&pb.peer)).count() as u32;
            prop_assert_eq!(up, spines);
        }

        let routes = RouteTable::compute(&f.topo);
        for &a in &f.hosts {
            for &b in &f.hosts {
                if a == b { continue; }
                let hops = routes.hop_count(a, b).expect("all host pairs connected");
                let expect = if f.leaf_of(a) == f.leaf_of(b) { 2 } else { 4 };
                prop_assert_eq!(hops, expect, "{a} -> {b}");
                if f.leaf_of(a) != f.leaf_of(b) {
                    // The host-facing tier exposes the full spine fan-out
                    // as equal-cost choices.
                    let ec = routes.equal_cost_ports(&f.topo, f.leaf_of(a), b);
                    prop_assert_eq!(ec.len() as u32, spines, "{a} -> {b}");
                }
            }
        }
    }

    /// Fat-tree generator invariants: classic counts for arity k, adjacent-
    /// tier wiring only, and 2/4/6-link hop bounds (same edge / same pod /
    /// cross pod).
    #[test]
    fn fat_tree_generator_invariants(half in 1u32..3, hosts_per_edge in 1u32..3) {
        let k = half * 2;
        let p = FatTreeParams { k, hosts_per_edge, link: LinkParams::paper_default() };
        let f = p.build();
        prop_assert_eq!(f.hosts.len() as u32, k * half * hosts_per_edge);
        prop_assert_eq!(f.tiers[0].len() as u32, k * half, "edge switches");
        prop_assert_eq!(f.tiers[1].len() as u32, k * half, "aggregation switches");
        prop_assert_eq!(f.tiers[2].len() as u32, half * half, "core switches");

        let tier_of = |n: int_edge_sched::netsim::NodeId| -> usize {
            if f.topo.node(n).kind == NodeKind::Host { return 0; }
            1 + f.tiers.iter().position(|t| t.contains(&n)).expect("switch in a tier")
        };
        for l in &f.topo.links {
            prop_assert_eq!(tier_of(l.a.0).abs_diff(tier_of(l.b.0)), 1, "{:?}", l.id);
        }

        let pod_of = |edge: int_edge_sched::netsim::NodeId| -> u32 {
            f.tiers[0].iter().position(|&e| e == edge).unwrap() as u32 / half
        };
        let routes = RouteTable::compute(&f.topo);
        for &a in &f.hosts {
            for &b in &f.hosts {
                if a == b { continue; }
                let hops = routes.hop_count(a, b).expect("all host pairs connected");
                let (ea, eb) = (f.leaf_of(a), f.leaf_of(b));
                let expect = if ea == eb {
                    2
                } else if pod_of(ea) == pod_of(eb) {
                    4
                } else {
                    6
                };
                prop_assert_eq!(hops, expect, "{a} -> {b}");
            }
        }
    }

    /// TCP delivers the exact byte stream for any loss pattern that is not
    /// total (each direction keeps at least some packets), using explicit
    /// timer firing to recover.
    #[test]
    fn tcp_stream_survives_arbitrary_loss(
        len in 1usize..30_000,
        loss_mask in any::<u64>(),
    ) {
        let a_ip = Ipv4Addr::new(10, 0, 0, 1);
        let b_ip = Ipv4Addr::new(10, 0, 0, 2);
        let mut a = TcpHost::new(a_ip, TcpConfig::default());
        let mut b = TcpHost::new(b_ip, TcpConfig::default());
        b.listen(7100);
        let conn = a.alloc_conn_id();
        a.connect(conn, b_ip, 7100, SimTime(0));

        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        a.send(conn, &data, SimTime(0));
        a.close(conn, SimTime(0));

        let mut received = Vec::new();
        let mut now = 1u64;
        let mut pkt_counter = 0u32;
        let mut pending_a: Vec<int_edge_sched::netsim::tcp::TimerRequest> = Vec::new();
        let mut pending_b: Vec<int_edge_sched::netsim::tcp::TimerRequest> = Vec::new();
        // Drive the pair: exchange segments (dropping per the mask), firing
        // every pending timer when the network goes quiet.
        for _round in 0..10_000 {
            let from_a = a.take_segments();
            let from_b = b.take_segments();
            let quiet = from_a.is_empty() && from_b.is_empty();
            // The mask drops data/FIN segments (retransmitted without
            // limit); handshake segments are spared because connects give
            // up after a bounded number of SYN retries, by design.
            let mut lossy = |hdr: &int_edge_sched::packet::TcpHeader, plen: usize| {
                if hdr.flags.syn || (plen == 0 && !hdr.flags.fin) {
                    return false;
                }
                pkt_counter += 1;
                pkt_counter < 64 && (loss_mask >> (pkt_counter % 64)) & 1 == 1
            };
            for s in from_a {
                if !lossy(&s.header, s.payload.len()) {
                    b.on_segment(SimTime(now), a_ip, &s.header, &s.payload);
                }
            }
            for s in from_b {
                if !lossy(&s.header, s.payload.len()) {
                    a.on_segment(SimTime(now), b_ip, &s.header, &s.payload);
                }
            }
            for e in b.take_events() {
                if let int_edge_sched::netsim::TcpEvent::Data { data, .. } = e {
                    received.extend_from_slice(&data);
                }
            }
            a.take_events();
            if received.len() == len {
                break;
            }
            // Collect timer arms from both sides (stale generations are
            // filtered by the hosts when fired).
            pending_a.extend(a.take_timer_requests());
            pending_b.extend(b.take_timer_requests());
            if quiet {
                // Network idle: advance time and fire everything pending.
                now += 2_000_000_000;
                for t in std::mem::take(&mut pending_a) {
                    a.on_timer(t.conn, t.generation, SimTime(now));
                }
                for t in std::mem::take(&mut pending_b) {
                    b.on_timer(t.conn, t.generation, SimTime(now));
                }
            } else {
                now += 1_000_000;
            }
        }
        prop_assert_eq!(received.len(), len, "stream fully delivered");
        prop_assert_eq!(received, data, "stream intact and in order");
    }
}
