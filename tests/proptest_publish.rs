//! Property-based pinning of the O(dirty) incremental epoch publisher
//! against the full-rebuild oracle.
//!
//! A random op sequence of probe updates (varying routes, latencies,
//! queues, clock steps) interleaved with stale-link evictions drives
//! three planes over identical collector state:
//!
//! * a [`SnapshotPublisher`] with the incremental path enabled (the
//!   default) — patches dirty arcs in place while `topo_gen` holds,
//!   recycling the epoch-before-last's arrays when no reader pins them;
//! * a [`SnapshotPublisher`] with the incremental path forced off —
//!   every epoch is a full rebuild through the same publisher plumbing;
//! * the raw [`SchedSnapshot::build`] oracle with a fresh engine.
//!
//! After **every** epoch all three snapshots must agree on all content
//! (`content_eq`: topology arrays, weights, delay estimates, queue
//! evidence runs, origin table) — only the physical `qlen_hist` slack
//! layout may differ. Occasional epochs are pinned alive in a reader
//! Vec so the publisher exercises all three buffer paths: recycled
//! spare (union patch), allocation reuse (clone_from), and fresh clone.

use int_edge_sched::core::rank::StaticDistances;
use int_edge_sched::core::{
    CoreConfig, IntCollector, PathEngine, SchedSnapshot, SnapshotPublisher,
};
use int_edge_sched::packet::int::IntRecord;
use int_edge_sched::packet::ProbePayload;
use proptest::prelude::*;
use std::sync::Arc;

const SCHED: u32 = 100;
const EVICT_HORIZON_NS: u64 = 350_000_000;

fn probe(origin: u32, route: u32, lat_ms: u64, qlen: u32, seq: u64, now_ns: u64) -> ProbePayload {
    // Three route shapes per origin: a dedicated star switch, a detour
    // over the shared spine 20, and a cross route through the
    // neighbour's star switch — the proptest_core churn recipe.
    let chain: Vec<u32> = match route {
        0 => vec![10 + origin],
        1 => vec![10 + origin, 20],
        _ => vec![20, 10 + (origin + 1) % 5],
    };
    let mut p = ProbePayload::new(origin, seq, 0);
    let last = chain.len() as u64 - 1;
    for (i, sw) in chain.iter().enumerate() {
        p.int.push(IntRecord {
            switch_id: *sw,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: qlen,
            qlen_at_probe_pkts: qlen / 2,
            link_latency_ns: lat_ms * 1_000_000,
            egress_ts_ns: now_ns - (last - i as u64) * lat_ms * 1_000_000,
        });
    }
    p
}

proptest! {
    #[test]
    fn incremental_publish_matches_full_rebuild_oracle(
        ops in proptest::collection::vec(
            // (origin, route shape, link latency ms, queue, clock step ms, op kind)
            (0u32..5, 0u32..3, 1u64..50, 0u32..40, 1u64..250, 0u8..8),
            1..40,
        ),
        seed in any::<u64>(),
    ) {
        let cfg = Arc::new(CoreConfig::default());
        let distances = Arc::new(StaticDistances::new());

        // Two collectors fed identically: each publisher must drain its
        // own dirty list without seeing the other's take.
        let mut col_inc = IntCollector::new(SCHED);
        let mut col_full = IntCollector::new(SCHED);
        let mut pub_inc = SnapshotPublisher::new();
        pub_inc.set_incremental(true);
        let mut pub_full = SnapshotPublisher::new();
        pub_full.set_incremental(false);
        let mut engine = PathEngine::new();

        let mut now_ns: u64 = 1_000_000_000;
        let mut pinned: Vec<Arc<SchedSnapshot>> = Vec::new();

        for (seq, &(origin, route, lat_ms, qlen, dt_ms, kind)) in ops.iter().enumerate() {
            now_ns += dt_ms * 1_000_000;
            if kind == 7 {
                col_inc.map_mut().evict_stale(now_ns, EVICT_HORIZON_NS);
                col_full.map_mut().evict_stale(now_ns, EVICT_HORIZON_NS);
            } else {
                let p = probe(origin, route, lat_ms, qlen, seq as u64 + 1, now_ns);
                col_inc.ingest(&p, now_ns);
                col_full.ingest(&p, now_ns);
            }

            let epoch = seq as u64 + 1;
            let inc = pub_inc.publish(&mut col_inc, &cfg, &distances, seed, epoch, now_ns);
            let full = pub_full.publish(&mut col_full, &cfg, &distances, seed, epoch, now_ns);
            let oracle = SchedSnapshot::build(
                &col_inc, &mut engine, &cfg, &distances, seed, epoch, now_ns,
            );

            prop_assert!(
                inc.content_eq(&full),
                "incremental vs full publisher diverged after op {seq} (kind {kind})"
            );
            prop_assert!(
                inc.content_eq(&oracle),
                "incremental publisher vs raw oracle diverged after op {seq} (kind {kind})"
            );

            // Pin every third epoch like a slow reader shard would: the
            // publisher must fall back to cloning instead of recycling.
            if seq % 3 == 0 {
                pinned.push(Arc::clone(&inc));
            }
        }

        // The incremental publisher actually took the fast path at least
        // once on any run long enough to have two same-topology epochs
        // in a row (metric-only refreshes of existing edges).
        let stats = pub_inc.stats();
        prop_assert_eq!(
            stats.full_builds + stats.incremental_builds,
            ops.len() as u64
        );
        prop_assert_eq!(pub_full.stats().incremental_builds, 0);
    }
}
