//! Property-based tests on the scheduler core: ranking invariants,
//! estimator monotonicity, utilization-curve behaviour, and map learning.

use int_edge_sched::core::config::{HopSignal, UtilPoint};
use int_edge_sched::core::rank::{Ranker, StaticDistances};
use int_edge_sched::core::{
    BandwidthEstimator, CoreConfig, DelayEstimator, ExcludeReason, NetNode, NetworkMap, PathEngine,
    Policy, RankedServer,
};
use int_edge_sched::packet::int::IntRecord;
use int_edge_sched::packet::ProbePayload;
use proptest::prelude::*;

fn rec(switch_id: u32, maxq: u32, ts_ms: u64) -> IntRecord {
    IntRecord {
        switch_id,
        ingress_port: 0,
        egress_port: 1,
        max_qlen_pkts: maxq,
        qlen_at_probe_pkts: maxq / 2,
        link_latency_ns: 10_000_000,
        egress_ts_ns: ts_ms * 1_000_000,
    }
}

/// A map where host `o` reaches the scheduler (host 100) via its own
/// dedicated switch `10 + o` with queue `q`.
fn star_map(qlens: &[u32]) -> NetworkMap {
    let mut m = NetworkMap::new();
    for (o, &q) in qlens.iter().enumerate() {
        let mut p = ProbePayload::new(o as u32, 1, 0);
        p.int.push(rec(10 + o as u32, q, 11));
        m.apply_probe(&p, 100, 30_000_000);
    }
    m
}

proptest! {
    /// Delay ranking orders candidates by non-decreasing estimate, and the
    /// result is a permutation of the input.
    #[test]
    fn delay_ranking_is_sorted_permutation(qlens in proptest::collection::vec(0u32..64, 2..8)) {
        let m = star_map(&qlens);
        let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
        let candidates: Vec<u32> = (0..qlens.len() as u32).collect();
        let ranked = r.rank(&m, 100, &candidates, Policy::IntDelay, 30_000_000);

        prop_assert_eq!(ranked.len(), candidates.len());
        let mut hosts: Vec<u32> = ranked.iter().map(|s| s.host).collect();
        hosts.sort();
        prop_assert_eq!(hosts, candidates);
        for w in ranked.windows(2) {
            prop_assert!(w[0].est_delay_ns <= w[1].est_delay_ns);
        }
    }

    /// Bandwidth ranking is non-increasing in estimated bandwidth.
    #[test]
    fn bandwidth_ranking_is_sorted(qlens in proptest::collection::vec(0u32..64, 2..8)) {
        let m = star_map(&qlens);
        let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
        let candidates: Vec<u32> = (0..qlens.len() as u32).collect();
        let ranked = r.rank(&m, 100, &candidates, Policy::IntBandwidth, 30_000_000);
        for w in ranked.windows(2) {
            prop_assert!(w[0].est_bandwidth_bps >= w[1].est_bandwidth_bps);
        }
    }

    /// More queueing on a server's path can never make its delay estimate
    /// smaller, nor its bandwidth estimate larger.
    #[test]
    fn estimates_monotone_in_queue(q1 in 0u32..60, bump in 1u32..30) {
        let low = star_map(&[q1]);
        let high = star_map(&[q1 + bump]);
        let cfg = CoreConfig::default();
        let de = DelayEstimator::new(cfg.clone());
        let be = BandwidthEstimator::new(cfg);
        let now = 30_000_000;

        let d_low = de.estimate(&low, NetNode::Host(100), NetNode::Host(0), now).unwrap();
        let d_high = de.estimate(&high, NetNode::Host(100), NetNode::Host(0), now).unwrap();
        prop_assert!(d_high.total_ns() >= d_low.total_ns());

        let b_low = be.estimate(&low, NetNode::Host(100), NetNode::Host(0), now).unwrap();
        let b_high = be.estimate(&high, NetNode::Host(100), NetNode::Host(0), now).unwrap();
        prop_assert!(b_high <= b_low);
    }

    /// The utilization interpolation is monotone and bounded for any
    /// well-formed (sorted, clamped) curve.
    #[test]
    fn util_curve_monotone_bounded(
        raw in proptest::collection::vec((0u32..200, 0.0f64..=1.0), 2..8),
    ) {
        let mut pts: Vec<UtilPoint> =
            raw.into_iter().map(|(qlen, util)| UtilPoint { qlen, util }).collect();
        pts.sort_by_key(|p| p.qlen);
        pts.dedup_by_key(|p| p.qlen);
        // Make utils non-decreasing so the curve is well-formed.
        for i in 1..pts.len() {
            if pts[i].util < pts[i - 1].util {
                pts[i].util = pts[i - 1].util;
            }
        }
        let cfg = CoreConfig { util_curve: pts, ..CoreConfig::default() };
        let mut prev = -1.0;
        for q in 0..=220 {
            let u = cfg.utilization_for_qlen(q);
            prop_assert!((0.0..=1.0).contains(&u), "bounded at q={q}: {u}");
            prop_assert!(u >= prev - 1e-12, "monotone at q={q}");
            prev = u;
        }
    }

    /// Available bandwidth never exceeds capacity and hits the endpoints.
    #[test]
    fn available_bw_bounded(q in any::<u32>(), cap in 1_000u64..1_000_000_000) {
        let cfg = CoreConfig { link_capacity_bps: cap, ..CoreConfig::default() };
        let bw = cfg.available_bw_for_qlen(q);
        prop_assert!(bw <= cap);
    }

    /// Learning is idempotent with respect to topology: re-applying the
    /// same probe changes no adjacency, only freshness.
    #[test]
    fn reapplying_probe_is_topology_idempotent(qlens in proptest::collection::vec(0u32..64, 1..6)) {
        let mut m = star_map(&qlens);
        let edges_before: Vec<_> = m.edges().map(|(a, b, _)| (a, b)).collect();
        let mut p = ProbePayload::new(0, 2, 0);
        p.int.push(rec(10, qlens[0], 11));
        m.apply_probe(&p, 100, 31_000_000);
        let edges_after: Vec<_> = m.edges().map(|(a, b, _)| (a, b)).collect();
        prop_assert_eq!(edges_before, edges_after);
    }

    /// The instantaneous-queue ablation signal is also monotone in the
    /// reported instantaneous value.
    #[test]
    fn instantaneous_signal_used_when_configured(q in 2u32..60) {
        let mut m = NetworkMap::new();
        let mut p = ProbePayload::new(0, 1, 0);
        // max = q, instantaneous = q/2 (from rec()).
        p.int.push(rec(10, q, 11));
        m.apply_probe(&p, 100, 30_000_000);

        let max_cfg = CoreConfig::default();
        let inst_cfg = CoreConfig { hop_signal: HopSignal::InstantaneousQueue, ..CoreConfig::default() };
        let edge_q_max =
            m.effective_qlen(&max_cfg, NetNode::Switch(10), NetNode::Host(100), 30_000_000);
        let edge_q_inst =
            m.effective_qlen(&inst_cfg, NetNode::Switch(10), NetNode::Host(100), 30_000_000);
        prop_assert_eq!(edge_q_max, q);
        prop_assert_eq!(edge_q_inst, q / 2);
    }

    /// Random ranking with the same seed is reproducible for any candidate
    /// set.
    #[test]
    fn random_ranking_reproducible(candidates in proptest::collection::btree_set(0u32..50, 1..10), seed in any::<u64>()) {
        let cands: Vec<u32> = candidates.into_iter().collect();
        let m = NetworkMap::new();
        let order = |s| {
            let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), s);
            r.rank(&m, 99, &cands, Policy::Random, 0)
                .iter()
                .map(|x| x.host)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(order(seed), order(seed));
    }

    /// Oracle test for the indexed path engine: a random op sequence of
    /// probe updates (varying routes, latencies, and queues) interleaved
    /// with stale-link evictions (cuts) drives one long-lived [`Ranker`]
    /// — so the CSR snapshot, weight refresh, and path cache must
    /// invalidate correctly across every mutation — and after each op the
    /// engine's paths are byte-identical to the reference
    /// [`NetworkMap::path`] and `rank`/`rank_detailed` match an oracle
    /// recomputed from the point-to-point estimators.
    #[test]
    fn indexed_engine_matches_oracle_under_churn(
        ops in proptest::collection::vec(
            // (origin, route shape, link latency ms, queue, clock step ms, op kind)
            (0u32..5, 0u32..3, 1u64..50, 0u32..40, 1u64..250, 0u8..8),
            1..32,
        ),
    ) {
        const SCHED: u32 = 100;
        const EVICT_HORIZON_NS: u64 = 350_000_000;
        let cfg = CoreConfig::default();
        let de = DelayEstimator::new(cfg.clone());
        let be = BandwidthEstimator::new(cfg.clone());
        let mut m = NetworkMap::new();
        let mut r = Ranker::new(cfg.clone(), StaticDistances::new(), 1);
        let mut now_ns: u64 = 1_000_000_000;
        let hosts: Vec<u32> = (0..5).chain([SCHED]).collect();

        for (seq, &(origin, route, lat_ms, qlen, dt_ms, kind)) in ops.iter().enumerate() {
            now_ns += dt_ms * 1_000_000;
            if kind == 7 {
                m.evict_stale(now_ns, EVICT_HORIZON_NS);
            } else {
                // Three route shapes per origin: a dedicated star switch, a
                // detour over the shared spine 20, and a cross route through
                // the neighbour's star switch — so ops overlap on links and
                // metric updates genuinely reroute traffic.
                let chain: Vec<u32> = match route {
                    0 => vec![10 + origin],
                    1 => vec![10 + origin, 20],
                    _ => vec![20, 10 + (origin + 1) % 5],
                };
                let mut p = ProbePayload::new(origin, seq as u64 + 1, 0);
                let last = chain.len() as u64 - 1;
                for (i, sw) in chain.iter().enumerate() {
                    p.int.push(IntRecord {
                        switch_id: *sw,
                        ingress_port: 0,
                        egress_port: 1,
                        max_qlen_pkts: qlen,
                        qlen_at_probe_pkts: qlen / 2,
                        link_latency_ns: lat_ms * 1_000_000,
                        egress_ts_ns: now_ns - (last - i as u64) * lat_ms * 1_000_000,
                    });
                }
                m.apply_probe(&p, SCHED, now_ns);
            }

            // Paths: engine vs the reference Dijkstra, every host pair.
            for &from in &hosts {
                for &to in &hosts {
                    let oracle = m.path(&cfg, NetNode::Host(from), NetNode::Host(to));
                    let got = r.learned_path(&m, NetNode::Host(from), NetNode::Host(to));
                    prop_assert_eq!(got, oracle, "path {}->{} after op {}", from, to, seq);
                }
            }

            // Rankings: the hot path vs an oracle built from independent
            // point-to-point estimates with the documented sort keys.
            let cands: Vec<u32> = (0..5).collect();
            let mut exp: Vec<RankedServer> = cands
                .iter()
                .map(|&h| {
                    let d = de.estimate(&m, NetNode::Host(SCHED), NetNode::Host(h), now_ns);
                    let b = be.estimate(&m, NetNode::Host(SCHED), NetNode::Host(h), now_ns);
                    match (d, b) {
                        (Some(d), Some(b)) => RankedServer {
                            host: h,
                            est_delay_ns: d.total_ns(),
                            est_bandwidth_bps: b,
                        },
                        _ => RankedServer { host: h, est_delay_ns: u64::MAX, est_bandwidth_bps: 0 },
                    }
                })
                .collect();
            for policy in [Policy::IntDelay, Policy::IntBandwidth] {
                match policy {
                    Policy::IntDelay => exp.sort_by_key(|s| (s.est_delay_ns, s.host)),
                    _ => exp.sort_by_key(|s| {
                        (std::cmp::Reverse(s.est_bandwidth_bps), s.est_delay_ns, s.host)
                    }),
                }
                let got = r.rank(&m, SCHED, &cands, policy, now_ns);
                prop_assert_eq!(&got, &exp, "rank {:?} after op {}", policy, seq);

                let det = r.rank_detailed(&m, SCHED, &cands, policy, now_ns, &[]);
                let reachable: Vec<RankedServer> =
                    exp.iter().copied().filter(|s| s.est_delay_ns != u64::MAX).collect();
                if reachable.is_empty() {
                    // Warm-up fallback: everyone ranked, nobody excluded.
                    prop_assert_eq!(&det.ranked, &exp, "warm-up {:?} after op {}", policy, seq);
                    prop_assert!(det.excluded.is_empty());
                } else {
                    prop_assert_eq!(&det.ranked, &reachable, "{:?} after op {}", policy, seq);
                    let mut pathless: Vec<(u32, ExcludeReason)> = exp
                        .iter()
                        .filter(|s| s.est_delay_ns == u64::MAX)
                        .map(|s| (s.host, ExcludeReason::NoFreshPath))
                        .collect();
                    pathless.sort_by_key(|(h, _)| *h);
                    prop_assert_eq!(&det.excluded, &pathless);
                }
            }
        }
    }

    /// Oracle test for the k-path engine (satellite of the multipath PR):
    /// the same churn recipe as above drives one long-lived [`PathEngine`]
    /// at `k_paths = 3`, and after every op the engine's k-sets must be
    /// byte-identical to the linear [`NetworkMap::k_paths`] oracle for all
    /// host pairs — so the k-set cache must invalidate on both structural
    /// and metric-only mutations, including ones that re-price only one
    /// path of a cached set.
    #[test]
    fn k_path_engine_matches_oracle_under_churn(
        ops in proptest::collection::vec(
            // (origin, route shape, link latency ms, queue, clock step ms, op kind)
            (0u32..5, 0u32..3, 1u64..50, 0u32..40, 1u64..250, 0u8..8),
            1..24,
        ),
    ) {
        const SCHED: u32 = 100;
        const EVICT_HORIZON_NS: u64 = 350_000_000;
        let cfg = CoreConfig { k_paths: 3, ..CoreConfig::default() };
        let mut m = NetworkMap::new();
        let mut eng = PathEngine::new();
        let mut now_ns: u64 = 1_000_000_000;
        let hosts: Vec<u32> = (0..5).chain([SCHED]).collect();

        for (seq, &(origin, route, lat_ms, qlen, dt_ms, kind)) in ops.iter().enumerate() {
            now_ns += dt_ms * 1_000_000;
            if kind == 7 {
                m.evict_stale(now_ns, EVICT_HORIZON_NS);
            } else {
                let chain: Vec<u32> = match route {
                    0 => vec![10 + origin],
                    1 => vec![10 + origin, 20],
                    _ => vec![20, 10 + (origin + 1) % 5],
                };
                let mut p = ProbePayload::new(origin, seq as u64 + 1, 0);
                let last = chain.len() as u64 - 1;
                for (i, sw) in chain.iter().enumerate() {
                    p.int.push(IntRecord {
                        switch_id: *sw,
                        ingress_port: 0,
                        egress_port: 1,
                        max_qlen_pkts: qlen,
                        qlen_at_probe_pkts: qlen / 2,
                        link_latency_ns: lat_ms * 1_000_000,
                        egress_ts_ns: now_ns - (last - i as u64) * lat_ms * 1_000_000,
                    });
                }
                m.apply_probe(&p, SCHED, now_ns);
            }

            for &from in &hosts {
                for &to in &hosts {
                    let (a, b) = (NetNode::Host(from), NetNode::Host(to));
                    let oracle = m.k_paths(&cfg, a, b, cfg.k_paths);
                    let got = eng.paths(&m, &cfg, a, b).to_vec();
                    prop_assert_eq!(&got, &oracle, "k-paths {}->{} after op {}", from, to, seq);
                    // The head of the k-set is always the single shortest
                    // path both planes agree on.
                    prop_assert_eq!(
                        got.first().cloned(),
                        m.path(&cfg, a, b),
                        "first k-path {}->{} after op {}", from, to, seq
                    );
                }
            }
        }
    }
}
