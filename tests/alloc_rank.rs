//! Steady-state rank queries perform **zero heap allocations**.
//!
//! A counting allocator wraps the system allocator (this integration test
//! is its own binary, so the `#[global_allocator]` is scoped to it). After
//! one warm-up query per (requester, policy) — which builds the CSR
//! snapshot, runs the shared Dijkstra, and fills the path cache — every
//! further `rank_into` call into a reused buffer must hit only cached
//! paths, reused scratch, and in-place sorting.
//!
//! Single test function on purpose: parallel tests would interleave their
//! allocations into the shared counter.

use int_edge_sched::core::rank::{RankOutcome, Ranker, StaticDistances};
use int_edge_sched::core::snapshot::SnapshotScratch;
use int_edge_sched::core::{CoreConfig, Policy, RankedServer, SchedulerCore};
use int_edge_sched::packet::int::IntRecord;
use int_edge_sched::packet::ProbePayload;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Only the test thread's allocations count — the libtest harness threads
// allocate at their own pace (progress output, channel bookkeeping) and
// would make the counter flaky. `Cell<bool>` has no destructor, so the
// TLS access inside the allocator cannot itself allocate or recurse.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counted(here: bool) -> bool {
    COUNTING.try_with(|c| c.replace(here)).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Testbed-scale map: 8 servers, each behind its own leaf switch, all
/// joined by spine switch 20 next to scheduler host 100.
fn learned_map() -> int_edge_sched::core::NetworkMap {
    let mut m = int_edge_sched::core::NetworkMap::new();
    for h in 0..8u32 {
        let mut p = ProbePayload::new(h, 1, 0);
        for (i, sw) in [10 + h, 20].into_iter().enumerate() {
            p.int.push(IntRecord {
                switch_id: sw,
                ingress_port: 0,
                egress_port: 1,
                max_qlen_pkts: h * 3,
                qlen_at_probe_pkts: h,
                link_latency_ns: 10_000_000,
                egress_ts_ns: (i as u64 + 1) * 10_000_000,
            });
        }
        m.apply_probe(&p, 100, 30_000_000);
    }
    m
}

#[test]
fn steady_state_rank_queries_allocate_nothing() {
    let m = learned_map();
    let candidates: Vec<u32> = (0..8).collect();
    let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
    let mut out: Vec<RankedServer> = Vec::new();

    // Warm-up: snapshot + SSSP + cache fill + buffer growth.
    for policy in [Policy::IntDelay, Policy::IntBandwidth] {
        r.rank_into(&m, 100, &candidates, policy, 30_000_000, &mut out);
    }
    let warm = r.path_stats();
    assert_eq!(warm.sssp_runs, 1, "both policies share one Dijkstra");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    counted(true);
    for round in 0..1_000u64 {
        let now = 30_000_000 + round; // vary the query, not the map
        r.rank_into(&m, 100, &candidates, Policy::IntDelay, now, &mut out);
        r.rank_into(&m, 100, &candidates, Policy::IntBandwidth, now, &mut out);
    }
    counted(false);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state rank queries must not touch the heap"
    );

    let steady = r.path_stats();
    assert_eq!(steady.sssp_runs, warm.sssp_runs, "no extra Dijkstra runs");
    assert_eq!(steady.csr_rebuilds, warm.csr_rebuilds, "no CSR rebuilds");
    assert_eq!(
        steady.cache_hits,
        warm.cache_hits + 2 * 8 * 1_000,
        "every steady-state path resolution is a cache hit"
    );
    assert!(!out.is_empty());

    // The scheduler-level `_into` entry points (PR 6 satellite): the full
    // query path — eviction check, silence scan, candidate collection,
    // detailed ranking with exclusions — reuses internal scratch and the
    // caller's buffers, so it is alloc-free too.
    let mut core = SchedulerCore::new(100, CoreConfig::default(), StaticDistances::new(), 1);
    for h in 0..8u32 {
        let mut p = ProbePayload::new(h, 1, 0);
        for (i, sw) in [10 + h, 20].into_iter().enumerate() {
            p.int.push(IntRecord {
                switch_id: sw,
                ingress_port: 0,
                egress_port: 1,
                max_qlen_pkts: h * 3,
                qlen_at_probe_pkts: h,
                link_latency_ns: 10_000_000,
                egress_ts_ns: (i as u64 + 1) * 10_000_000,
            });
        }
        core.collector_mut().ingest(&p, 30_000_000);
    }
    let mut detailed = RankOutcome::default();
    let mut ranked: Vec<RankedServer> = Vec::new();
    // Warm-up grows every buffer (including the audit-off fast path).
    for policy in [Policy::IntDelay, Policy::IntBandwidth] {
        core.rank_detailed_into_with(100, policy, 30_000_000, &mut detailed);
        core.rank_with_into(100, policy, 30_000_000, &mut ranked);
    }
    core.candidates_with_estimates_into(100, 30_000_000, &mut ranked);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    counted(true);
    for round in 0..1_000u64 {
        let now = 30_000_000 + round;
        core.rank_detailed_into_with(100, Policy::IntDelay, now, &mut detailed);
        core.rank_with_into(100, Policy::IntBandwidth, now, &mut ranked);
        core.candidates_with_estimates_into(100, now, &mut ranked);
    }
    counted(false);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state scheduler `_into` queries must not touch the heap"
    );
    assert!(!detailed.ranked.is_empty());

    // Snapshot serving (the sharded read path): after one warm-up query
    // fills the per-shard scratch, repeat queries are alloc-free as well.
    let mut sharded = int_edge_sched::core::shard::ShardedScheduler::new(
        100,
        CoreConfig::default(),
        StaticDistances::new(),
        1,
        1,
    );
    for h in 0..8u32 {
        let mut p = ProbePayload::new(h, 2, 0);
        for (i, sw) in [10 + h, 20].into_iter().enumerate() {
            p.int.push(IntRecord {
                switch_id: sw,
                ingress_port: 0,
                egress_port: 1,
                max_qlen_pkts: h * 3,
                qlen_at_probe_pkts: h,
                link_latency_ns: 10_000_000,
                egress_ts_ns: (i as u64 + 1) * 10_000_000,
            });
        }
        sharded.core_mut().collector_mut().ingest(&p, 30_000_000);
    }
    sharded.advance(30_000_000);
    let snap = sharded.epoch_slot().current().expect("published");
    let mut scratch = SnapshotScratch::new();
    for policy in [Policy::IntDelay, Policy::IntBandwidth] {
        snap.rank_detailed_into(&mut scratch, 100, policy, 30_000_000, 0, &mut detailed);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    counted(true);
    for round in 0..1_000u64 {
        let now = 30_000_000 + round;
        snap.rank_detailed_into(&mut scratch, 100, Policy::IntDelay, now, round, &mut detailed);
        snap.rank_detailed_into(
            &mut scratch,
            100,
            Policy::IntBandwidth,
            now,
            round,
            &mut detailed,
        );
    }
    counted(false);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state snapshot queries must not touch the heap"
    );
    assert!(!detailed.ranked.is_empty());
}
