//! Property-based tests on the wire formats: every header round-trips for
//! arbitrary field values, and no parser panics on arbitrary bytes.

use int_edge_sched::packet::int::{IntRecord, IntStack};
use int_edge_sched::packet::msgs::{Candidate, ControlMsg, RankingKind, TaskStreamHeader};
use int_edge_sched::packet::wire::{WireDecode, WireEncode};
use int_edge_sched::packet::{
    EthernetHeader, Ipv4Header, MacAddr, PacketBuilder, ParsedPacket, ProbePayload, TcpFlags,
    TcpHeader, UdpHeader,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_record() -> impl Strategy<Value = IntRecord> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(switch_id, ingress_port, egress_port, max_q, inst_q, lat, ts)| IntRecord {
                switch_id,
                ingress_port,
                egress_port,
                max_qlen_pkts: max_q,
                qlen_at_probe_pkts: inst_q,
                link_latency_ns: lat,
                egress_ts_ns: ts,
            },
        )
}

proptest! {
    #[test]
    fn ethernet_roundtrips(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), et in any::<u16>()) {
        let h = EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: int_edge_sched::packet::EtherType::from_value(et),
        };
        let parsed = EthernetHeader::decode(&mut &h.to_bytes()[..]).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn ipv4_roundtrips(
        src in arb_ip(),
        dst in arb_ip(),
        proto in any::<u8>(),
        payload_len in 0usize..1400,
        ttl in 1u8..=255,
        id in any::<u16>(),
    ) {
        let mut h = Ipv4Header::new(src, dst, int_edge_sched::packet::IpProtocol::from_value(proto), payload_len);
        h.ttl = ttl;
        h.identification = id;
        let parsed = Ipv4Header::decode(&mut &h.to_bytes()[..]).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn udp_roundtrips(sp in any::<u16>(), dp in any::<u16>(), len in 0usize..60_000) {
        let h = UdpHeader::new(sp, dp, len);
        prop_assert_eq!(UdpHeader::decode(&mut &h.to_bytes()[..]).unwrap(), h);
    }

    #[test]
    fn tcp_roundtrips(
        sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(), ack in any::<u32>(),
        win in any::<u16>(), flags in any::<u8>(),
    ) {
        let h = TcpHeader {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags {
                syn: flags & 1 != 0, ack: flags & 2 != 0,
                fin: flags & 4 != 0, rst: flags & 8 != 0,
            },
            window: win,
        };
        prop_assert_eq!(TcpHeader::decode(&mut &h.to_bytes()[..]).unwrap(), h);
    }

    #[test]
    fn int_stack_roundtrips(records in proptest::collection::vec(arb_record(), 0..12)) {
        let mut s = IntStack::new();
        for r in &records {
            s.push(*r);
        }
        let parsed = IntStack::decode(&mut &s.to_bytes()[..]).unwrap();
        prop_assert_eq!(parsed.records, records);
    }

    #[test]
    fn probe_roundtrips(
        origin in any::<u32>(), seq in any::<u64>(), ts in any::<u64>(),
        records in proptest::collection::vec(arb_record(), 0..8),
    ) {
        let mut p = ProbePayload::new(origin, seq, ts);
        for r in records {
            p.int.push(r);
        }
        let parsed = ProbePayload::decode(&mut &p.to_bytes()[..]).unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn control_msgs_roundtrip(
        requester in any::<u32>(), job in any::<u64>(), n in any::<u8>(),
        cands in proptest::collection::vec((any::<u32>(), any::<u64>(), any::<u64>()), 0..20),
        bw in any::<bool>(),
    ) {
        let msgs = [
            ControlMsg::SchedRequest {
                requester, job_id: job, task_count: n,
                ranking: if bw { RankingKind::Bandwidth } else { RankingKind::Delay },
            },
            ControlMsg::SchedResponse {
                job_id: job,
                candidates: cands
                    .iter()
                    .map(|&(node, d, b)| Candidate { node, est_delay_ns: d, est_bandwidth_bps: b })
                    .collect(),
            },
            ControlMsg::TaskDone {
                job_id: job, task_id: n as u64, executed_on: requester,
                data_received_ts_ns: job, queue_wait_ns: job ^ 0xFF,
            },
            ControlMsg::LoadReport { host: requester, outstanding: n as u32 },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            prop_assert_eq!(bytes.len(), m.encoded_len());
            prop_assert_eq!(ControlMsg::decode(&mut &bytes[..]).unwrap(), m);
        }
    }

    #[test]
    fn task_header_roundtrips(j in any::<u64>(), t in any::<u64>(), o in any::<u32>(), e in any::<u64>(), dl in any::<u64>(), d in any::<u64>()) {
        let h = TaskStreamHeader { job_id: j, task_id: t, origin: o, exec_duration_ns: e, deadline_ns: dl, data_len: d };
        prop_assert_eq!(TaskStreamHeader::decode(&mut &h.to_bytes()[..]).unwrap(), h);
    }

    /// Fuzz the parser stack: arbitrary bytes must never panic.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ParsedPacket::parse(&bytes);
        let _ = ProbePayload::decode(&mut &bytes[..]);
        let _ = ControlMsg::decode(&mut &bytes[..]);
        let _ = IntStack::decode(&mut &bytes[..]);
    }

    /// A frame built by the builder always parses back with intact payload.
    #[test]
    fn built_frames_parse(
        src_node in 0u32..1000, dst_node in 0u32..1000,
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let b = PacketBuilder::between(
            src_node,
            Ipv4Addr::from(0x0A000001u32 + src_node),
            dst_node,
            Ipv4Addr::from(0x0A000001u32 + dst_node),
        );
        let frame = b.udp(sp, dp, &payload);
        let parsed = ParsedPacket::parse(&frame).unwrap();
        prop_assert_eq!(parsed.payload(&frame), &payload[..]);
        prop_assert_eq!(parsed.udp().unwrap().dst_port, dp);
    }

    /// Bit-flipping a built frame must never panic the parser (and IP
    /// header corruption must be detected by the checksum).
    #[test]
    fn corrupted_frames_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let b = PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2));
        let mut frame = b.udp(1000, 2000, &payload);
        let idx = flip_at % frame.len();
        frame[idx] ^= 1 << flip_bit;
        let result = ParsedPacket::parse(&frame);
        if (14..34).contains(&idx) {
            // Any single-bit flip inside the IP header is caught.
            prop_assert!(result.is_err(), "ip corruption at byte {} undetected", idx);
        }
    }
}
