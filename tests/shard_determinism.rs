//! The sharded control plane's determinism contract (PR 6):
//!
//! 1. the `repro sustained` artifact is byte-identical across shard
//!    counts {1, 2, 8} *and* equal to the single-threaded oracle replay
//!    that drives the pre-sharding `SchedulerCore` directly;
//! 2. under live churn — a writer ingesting probes and publishing
//!    epochs while reader threads query concurrently — every answer a
//!    reader gets matches the oracle evaluated at the epoch the query
//!    was admitted against.
//!
//! Build with `RUSTFLAGS="--cfg shard_stress"` (CI does) to multiply
//! the churn iterations and lean harder on the publish/read race paths.

use int_edge_sched::core::rank::StaticDistances;
use int_edge_sched::core::shard::{RankQuery, ShardedScheduler};
use int_edge_sched::core::snapshot::SnapshotScratch;
use int_edge_sched::core::{CoreConfig, Policy, RankOutcome, SchedulerCore};
use int_edge_sched::experiments::sustained;
use int_edge_sched::packet::int::IntRecord;
use int_edge_sched::packet::ProbePayload;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Churn rounds: modest by default, heavy under `--cfg shard_stress`.
fn churn_rounds() -> usize {
    if cfg!(shard_stress) {
        400
    } else {
        60
    }
}

#[test]
fn sustained_artifact_identical_across_shard_counts_and_oracle() {
    // A trimmed run shape (CI-speed), same churn structure as the full
    // scenario: fault window, eviction, recovery.
    let (rounds, qpr) = (24, 96);
    let seed = 5;

    let oracle = sustained::run_oracle(seed, rounds, qpr);
    assert_eq!(oracle.total_queries, (rounds * qpr) as u64);
    assert!(!oracle.digest.is_empty());

    let mut artifacts = Vec::new();
    for shards in [1usize, 2, 8] {
        let (got, perf) = sustained::run_with(seed, rounds, qpr, shards);
        assert_eq!(perf.shards, shards);
        // The serialized artifact — what `repro sustained` writes — must
        // be byte-identical, not just structurally equal.
        artifacts.push(serde_json::to_string(&got).expect("serializable"));
        assert_eq!(got, oracle, "shards={shards} diverged from the oracle");
    }
    assert!(
        artifacts.windows(2).all(|w| w[0] == w[1]),
        "artifact bytes differ across shard counts"
    );
    let oracle_bytes = serde_json::to_string(&oracle).expect("serializable");
    assert_eq!(artifacts[0], oracle_bytes, "sharded bytes differ from oracle bytes");
}

fn probe(origin: u32, seq: u64, chain: &[(u32, u32)], ts_ns: u64) -> ProbePayload {
    let mut p = ProbePayload::new(origin, seq, 0);
    for (i, &(sw, q)) in chain.iter().enumerate() {
        p.int.push(IntRecord {
            switch_id: sw,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: q,
            qlen_at_probe_pkts: q / 2,
            link_latency_ns: 8_000_000,
            egress_ts_ns: ts_ns.saturating_sub((chain.len() - i) as u64 * 40_000),
        });
    }
    p
}

/// The ingest applied at `round`: three origins behind partially shared
/// switches, queue depths churned per round, origin 2 silent in a
/// mid-run window.
fn ingest_round(core: &mut SchedulerCore, round: usize, rounds: usize) {
    let now = (round as u64 + 1) * 100_000_000;
    let q = |k: usize| ((round * 7 + k * 13) % 32) as u32;
    core.collector_mut().ingest(
        &probe(1, round as u64, &[(10, q(0)), (11, q(1))], now),
        now,
    );
    if !(rounds / 4..rounds / 2).contains(&round) {
        core.collector_mut().ingest(
            &probe(2, round as u64, &[(12, q(2)), (11, q(3))], now),
            now,
        );
    }
    core.collector_mut().ingest(
        &probe(3, round as u64, &[(13, q(4)), (11, q(5))], now),
        now,
    );
}

fn query_set() -> Vec<RankQuery> {
    let mut qs = Vec::new();
    for requester in [6u32, 1, 3] {
        for policy in [Policy::IntDelay, Policy::IntBandwidth, Policy::Nearest] {
            // now_ns is filled per epoch from the snapshot's publish time.
            qs.push(RankQuery { requester, policy, now_ns: 0 });
        }
    }
    qs
}

fn scheduler_distances() -> StaticDistances {
    let mut d = StaticDistances::new();
    d.set(6, 1, 2);
    d.set(6, 2, 3);
    d.set(6, 3, 4);
    d.set(1, 2, 2);
    d.set(1, 3, 3);
    d.set(2, 3, 2);
    d
}

/// Readers race the publisher and check every answer against the oracle
/// for the epoch their snapshot belongs to.
#[test]
fn concurrent_queries_match_oracle_at_their_admitted_epoch() {
    let rounds = churn_rounds();
    let queries = query_set();

    // Phase 1 — sequential oracle: one SchedulerCore receives the exact
    // ingest stream; after each round, evaluate the query set at that
    // round's publish time. `oracle_by_round[r]` is the truth for epoch
    // r + 1 (the sharded plane publishes once per round: every round
    // moves `probes_accepted`).
    let mut oracle = SchedulerCore::new(6, CoreConfig::default(), scheduler_distances(), 9);
    let mut oracle_by_round: Vec<Vec<RankOutcome>> = Vec::with_capacity(rounds);
    for round in 0..rounds {
        ingest_round(&mut oracle, round, rounds);
        let now = (round as u64 + 1) * 100_000_000;
        oracle_by_round.push(
            queries
                .iter()
                .map(|q| oracle.rank_detailed_with(q.requester, q.policy, now))
                .collect(),
        );
    }

    // Phase 2 — live: a writer thread replays the same ingest and
    // publishes epochs while readers continuously grab the current
    // snapshot and verify their answers against the oracle row for that
    // snapshot's epoch.
    let mut sched = ShardedScheduler::new(6, CoreConfig::default(), scheduler_distances(), 9, 2);
    let slot = sched.epoch_slot();
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _reader in 0..2 {
            let slot = Arc::clone(&slot);
            let done = Arc::clone(&done);
            let queries = &queries;
            let oracle_by_round = &oracle_by_round;
            scope.spawn(move || {
                let mut scratch = SnapshotScratch::new();
                let mut cached = None;
                let mut verified = 0u64;
                let mut last_epoch = 0u64;
                while !done.load(Ordering::Acquire) || last_epoch < rounds as u64 {
                    if !slot.refresh(&mut cached) {
                        std::hint::spin_loop();
                        continue;
                    }
                    let snap = cached.as_ref().expect("refresh returned true");
                    let epoch = snap.epoch();
                    let now = snap.published_at_ns();
                    let want = &oracle_by_round[(epoch - 1) as usize];
                    for (i, q) in queries.iter().enumerate() {
                        let got = snap.rank_detailed(&mut scratch, q.requester, q.policy, now, i as u64);
                        assert_eq!(
                            got, want[i],
                            "epoch {epoch} query {i} diverged from the oracle"
                        );
                        verified += 1;
                    }
                    last_epoch = epoch;
                }
                assert!(verified > 0, "reader never saw a snapshot");
            });
        }

        for round in 0..rounds {
            ingest_round(sched.core_mut(), round, rounds);
            let now = (round as u64 + 1) * 100_000_000;
            assert!(sched.advance(now), "every round must publish (probes moved)");
            assert_eq!(sched.epoch(), round as u64 + 1);
        }
        done.store(true, Ordering::Release);
    });
}

/// `serve_batch` slot numbering is stable across batch boundaries: two
/// half batches equal one full batch, outcome for outcome.
#[test]
fn split_batches_equal_one_batch() {
    let build = || {
        let mut s = ShardedScheduler::new(6, CoreConfig::default(), scheduler_distances(), 9, 2);
        for round in 0..8 {
            ingest_round(s.core_mut(), round, 8);
        }
        s.advance(800_000_000);
        s
    };
    let queries: Vec<RankQuery> = query_set()
        .into_iter()
        .map(|q| RankQuery { now_ns: 800_000_000, ..q })
        .collect();

    let mut whole = Vec::new();
    build().serve_batch(&queries, &mut whole);

    let mut s = build();
    let mut first = Vec::new();
    let mut second = Vec::new();
    let mid = queries.len() / 2;
    s.serve_batch(&queries[..mid], &mut first);
    s.serve_batch(&queries[mid..], &mut second);
    first.extend(second);
    assert_eq!(first, whole, "slot numbering must not depend on batch boundaries");
}
